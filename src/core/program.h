// In-process "parallel program" with coordinator collectives.
//
// The reproduction runs each MPI program (simulation, analytics) as a set
// of threads, one per rank. FlexIO's connection/handshake protocol needs
// exactly three program-local collectives (paper Section II.C): gather to
// the elected coordinator (Steps 1.s/1.a), broadcast from the coordinator
// (Step 3), and a barrier. Rank 0 is the coordinator, matching the paper's
// "elect a local coordinator".
//
// Unlike MPI, the rank set is *elastic*: a rank can be deactivated (left
// or declared dead) or activated (admitted joiner) between collective
// rounds. A round completes when every currently-active rank has arrived,
// so survivors are never wedged behind a corpse; a deactivated rank that
// calls in gets kUnavailable ("excised"). Waits poll an optional liveness
// hook so a stalled round can trigger the failure detector that unblocks
// it (see DESIGN.md "Elastic membership").
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace flexio {

class Program {
 public:
  /// A program named `name` with `size` rank slots, all initially active.
  Program(std::string name, int size);

  const std::string& name() const { return name_; }
  int size() const { return size_; }
  static constexpr int kCoordinator = 0;

  /// Endpoint name for one rank, shared convention across the runtime.
  std::string endpoint_name(int rank) const {
    return name_ + "." + std::to_string(rank);
  }

  /// Gather: every active rank contributes a byte blob; the coordinator's
  /// `all` receives them indexed by rank (others get an empty vector).
  /// Slots of inactive ranks stay empty -- consumers must skip them.
  Status gather(int rank, ByteView contribution,
                std::vector<std::vector<std::byte>>* all,
                std::chrono::nanoseconds timeout);

  /// Broadcast: the coordinator's `data` is distributed to every active
  /// rank.
  Status broadcast(int rank, std::vector<std::byte>* data,
                   std::chrono::nanoseconds timeout);

  /// Barrier across all active ranks.
  Status barrier(int rank, std::chrono::nanoseconds timeout);

  // --- elastic membership ----------------------------------------------

  /// Admit `rank` into subsequent collective rounds (idempotent). Wakes
  /// await_admission and any round currently forming.
  void activate(int rank);

  /// activate() plus a record that the coordinator has applied a
  /// membership view of `epoch` covering this rank. A late joiner gates on
  /// that epoch (not on raw is_active) so it can never mistake its dead
  /// predecessor's still-active slot for its own admission.
  void admit(int rank, std::uint64_t epoch);

  /// Remove `rank` from collective accounting (left or dead; idempotent).
  /// A round blocked on its arrival completes over the remaining active
  /// ranks; its own in-flight collective (if any) is abandoned. The
  /// coordinator can never be deactivated.
  void deactivate(int rank);

  bool is_active(int rank) const {
    FLEXIO_CHECK(rank >= 0 && rank < size_);
    return active_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  int active_count() const;

  /// Block until the coordinator admits `rank` at an epoch >= `join_epoch`
  /// (late-join admission gate). The rank being active is NOT sufficient:
  /// a respawn can race the old incarnation's excision, leaving the slot
  /// active for the *previous* incarnation while its rounds still assume
  /// the old participant.
  Status await_admission(int rank, std::uint64_t join_epoch,
                         std::chrono::nanoseconds timeout);

  /// Install a failure-detector hook polled by blocked collective waits
  /// (every few ms, with all program locks released). The hook typically
  /// sweeps the directory's TTLs and deactivates dead ranks, unblocking
  /// the very round that polled it. Pass nullptr to clear.
  void set_liveness_hook(std::function<void()> hook);

 private:
  /// One reusable collective slot. A round is *latched*: completion is
  /// decided once against the active set of that moment, then the round
  /// drains (everyone who arrived departs) and resets.
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t generation = 0;
    bool complete = false;
    std::vector<char> arrived;
    std::vector<char> departed;
    std::vector<std::vector<std::byte>> contributions;
    std::vector<std::byte> bcast_data;
  };

  /// Re-evaluate a slot's round against the current active set: latch
  /// completion, excuse inactive ranks from draining, reset when drained.
  /// Caller holds slot.mutex.
  void advance_locked(Slot& slot);

  /// Predicate wait on a slot cv that honors the deadline and periodically
  /// runs the liveness hook (lock released during the call).
  template <typename Pred>
  Status wait_slot(Slot& slot, std::unique_lock<std::mutex>& lock,
                   std::chrono::steady_clock::time_point deadline, Pred pred,
                   const char* what);

  void run_liveness_hook();

  Status excised(const char* what, int rank) const;

  std::string name_;
  int size_;
  std::unique_ptr<std::atomic<bool>[]> active_;
  std::atomic<int> active_count_{0};
  Slot gather_slot_;
  Slot bcast_slot_;
  Slot barrier_slot_;

  mutable std::mutex membership_mutex_;
  std::condition_variable membership_cv_;
  /// Highest membership epoch at which each rank was admitted by the
  /// coordinator's view application. Guarded by membership_mutex_.
  std::vector<std::uint64_t> admitted_epoch_;

  std::mutex hook_mutex_;
  std::function<void()> liveness_hook_;
  std::atomic<bool> has_hook_{false};
};

}  // namespace flexio
