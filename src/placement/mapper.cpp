#include "placement/mapper.h"

#include "placement/partitioner.h"

namespace flexio::placement {

namespace {

Status assign(const CommGraph& graph, const ArchNode& node,
              const std::vector<int>& vertices, std::vector<long>* core_of) {
  if (vertices.empty()) return Status::ok();
  if (node.is_leaf()) {
    if (vertices.size() != 1) {
      return make_error(ErrorCode::kInternal, "leaf overcommitted");
    }
    (*core_of)[static_cast<std::size_t>(vertices[0])] = node.first_core;
    return Status::ok();
  }
  // First-fit capacities.
  std::vector<int> sizes;
  int remaining = static_cast<int>(vertices.size());
  for (const auto& child : node.children) {
    const int take = std::min<int>(static_cast<int>(child->cores), remaining);
    sizes.push_back(take);
    remaining -= take;
  }
  if (remaining > 0) {
    return make_error(ErrorCode::kResourceExhausted,
                      "more processes than cores in subtree");
  }
  auto parts = partition_subset(graph, vertices, sizes);
  if (!parts.is_ok()) return parts.status();
  for (std::size_t child = 0; child < node.children.size(); ++child) {
    std::vector<int> sub;
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      if (parts.value()[i] == static_cast<int>(child)) {
        sub.push_back(vertices[i]);
      }
    }
    FLEXIO_RETURN_IF_ERROR(
        assign(graph, *node.children[child], sub, core_of));
  }
  return Status::ok();
}

}  // namespace

StatusOr<std::vector<long>> map_graph(const CommGraph& graph,
                                      const ArchTree& tree) {
  if (graph.size() > tree.total_cores()) {
    return make_error(ErrorCode::kResourceExhausted,
                      "more processes than cores");
  }
  std::vector<long> core_of(static_cast<std::size_t>(graph.size()), -1);
  std::vector<int> all(static_cast<std::size_t>(graph.size()));
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  FLEXIO_RETURN_IF_ERROR(assign(graph, tree.root(), all, &core_of));
  return core_of;
}

double mapping_cost(const CommGraph& graph, const ArchTree& tree,
                    const std::vector<long>& core_of) {
  double cost = 0;
  for (int u = 0; u < graph.size(); ++u) {
    for (const auto& [v, w] : graph.neighbors(u)) {
      if (v > u) {
        cost += w * tree.core_distance(core_of[static_cast<std::size_t>(u)],
                                       core_of[static_cast<std::size_t>(v)]);
      }
    }
  }
  return cost;
}

}  // namespace flexio::placement
