#include "util/event_log.h"

#include <algorithm>

namespace flexio {

void EventLog::append(std::string line) {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
}

std::vector<std::string> EventLog::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::string EventLog::canonical() const {
  std::vector<std::string> sorted = lines();
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const std::string& line : sorted) {
    out += line;
    out += '\n';
  }
  return out;
}

std::uint64_t EventLog::fingerprint() const {
  const std::string text = canonical();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
}

}  // namespace flexio
