// FlexIO/ADIOS-style run configuration parsed from XML.
//
// Mirrors the paper's usage: an external XML file declares I/O groups and
// their variables, selects the I/O method per group (file engine vs. FlexIO
// stream), and passes transport tuning hints ("caching", "batching", "async",
// buffer sizes) so that changing placement or transport never touches
// application code (Sections II.A-II.B).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/xml.h"

namespace flexio::xml {

/// Handshake-distribution caching levels from Section II.C.
enum class CachingLevel {
  kNone,   // full 4-step handshake every variable, every timestep
  kLocal,  // reuse local-side distribution (skip Step 1)
  kAll,    // reuse both sides' distributions (skip Steps 1-4)
};

/// Per-group I/O method selection. A one-line change of `method` switches a
/// group between offline files and online streaming.
struct MethodConfig {
  std::string group;            // adios-group this method applies to
  std::string method;           // "POSIX", "BP", "FLEXIO", ...
  CachingLevel caching = CachingLevel::kNone;
  bool batching = false;        // pack all variables of a step into one batch
  bool async_writes = false;    // writer returns before delivery completes
  std::size_t queue_entries = 64;        // shm data-queue depth
  std::size_t queue_payload_bytes = 256; // shm data-queue entry payload size
  std::size_t pool_bytes = 64ull << 20;  // shm / rdma buffer pool cap
  std::size_t rdma_pool_bytes = 256ull << 20;  // registration-cache cap
  double timeout_ms = 30000.0;  // data-movement timeout before retry
  int max_retries = 3;          // paper: "simple timeout-and-retry"
  // Writer-side packing concurrency (threads that pack + send per-reader
  // piece groups, *including* the calling thread). 0 = unset: the writer
  // falls back to FLEXIO_PACK_THREADS, then to 1 (serial). 1 runs the
  // batch inline on the caller -- the serial path through the same code.
  int pack_threads = 0;
  // Reader-side unpack concurrency (threads that run plugin + placement
  // per delivered piece, *including* the calling thread). Same semantics
  // as pack_threads; 0 = unset falls back to FLEXIO_READ_THREADS, then 1.
  int read_threads = 0;
  // Many-stream multiplexing (DESIGN.md "Stream multiplexing"). With
  // shared_links every stream of a (program, rank) attaches to one shared
  // endpoint and its link table instead of dialing per-stream connections:
  // frames carry a wire::kMuxPrefixTag routing prefix, outbound sends run
  // through per-stream queues drained under deficit round-robin, and each
  // stream is bounded to credit_bytes of queued outbound data (a slow
  // reader stalls only its own stream). Both sides of a stream must agree
  // on the mode (the reader checks the writer's registered contact name).
  bool shared_links = false;
  std::size_t credit_bytes = 4ull << 20;       // per-stream outbound cap
  std::size_t drr_quantum_bytes = 64ull << 10; // DRR deficit refill per turn
  // Live telemetry plane (docs/OBSERVABILITY.md "Stats server"). telemetry
  // turns on flexio-stats-v1 delta publishing over the heartbeat path;
  // stats_addr ("host:port", port 0 = ephemeral) additionally starts the
  // in-process stats server (which implies publishing). The
  // FLEXIO_STATS_ADDR environment variable overrides stats_addr. Both off
  // by default: the only residual cost is one load+branch per beat.
  bool telemetry = false;
  std::string stats_addr;
  std::map<std::string, std::string> extra;  // unrecognized hints, passed through
};

/// One variable declaration inside a group.
struct VarConfig {
  std::string name;
  std::string type;                     // "double", "int32", "byte", ...
  std::vector<std::string> dimensions;  // symbolic or literal extents
};

/// One adios-group: a named set of variables written together each step.
struct GroupConfig {
  std::string name;
  std::vector<VarConfig> vars;
};

/// Whole parsed configuration file.
struct Config {
  std::vector<GroupConfig> groups;
  std::vector<MethodConfig> methods;
  std::size_t buffer_mb = 40;  // ADIOS-style staging buffer size

  /// Method for a group; nullptr when the group has no <method> entry.
  const MethodConfig* method_for(std::string_view group) const;
  /// Group by name; nullptr when absent.
  const GroupConfig* group(std::string_view name) const;
};

/// Parse a config from XML text (root element <adios-config>).
StatusOr<Config> parse_config(std::string_view text);

/// Parse a config from a file.
StatusOr<Config> parse_config_file(const std::string& path);

/// Parse "key=value;key=value" method parameter strings (the text content of
/// a <method> element) into a MethodConfig, layered over defaults.
Status apply_method_params(std::string_view params, MethodConfig* method);

}  // namespace flexio::xml
