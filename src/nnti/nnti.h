// NNTI-like RDMA portability layer.
//
// The paper's EVPath RDMA transport sits on Sandia's NNTI library, which
// exposes a uniform API -- Connect, Memory Register/Unregister, RDMA Put and
// Get, and small-message queues -- over ibverbs, Portals, and uGNI. This
// module reproduces that API surface over an in-process "fabric": peers are
// threads, remote memory really is remote to the caller (it may only be
// touched through registered regions, with key + bounds enforcement), and a
// pluggable fault injector exercises the timeout-and-retry story. Timing
// behaviour (registration cost, bandwidth) lives in cost_model.h for the
// simulated experiments.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace flexio::nnti {

/// Handle to a registered memory region. Sendable to peers (plain data);
/// remote sides address the region by key, never by raw pointer.
struct MemRegion {
  std::uint64_t key = 0;
  std::uint64_t len = 0;
};

/// Which operation a fault injector intercepts.
enum class Op { kConnect, kPutMessage, kGet, kPut, kRegister };

std::string_view op_name(Op op);

/// Test hook: return non-OK to make the next matching operation fail.
using FaultInjector =
    std::function<Status(Op op, const std::string& local, const std::string& peer)>;

/// Richer fault decision for one intercepted operation. The default action
/// lets the operation through untouched.
struct FaultAction {
  Status status;                      // non-OK: the operation fails with this
  std::chrono::nanoseconds delay{0};  // sleep before acting (reordering/jitter)
  bool duplicate = false;             // perform the side effect twice
  /// Swallow the operation: report success without performing it. Only
  /// put_message can be silently lost (fire-and-forget); the synchronous
  /// one-sided ops and connect surface a dropped attempt as kTimeout.
  bool drop = false;
};

/// Full-featured test hook; FaultInjector is the fail-only special case.
using FaultHook = std::function<FaultAction(
    Op op, const std::string& local, const std::string& peer)>;

struct NicStats {
  std::uint64_t registrations = 0;
  std::uint64_t deregistrations = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t bytes_get = 0;
  std::uint64_t bytes_put = 0;
};

class Fabric;

/// One endpoint on the fabric (a "process" in NNTI terms).
class Nic {
 public:
  ~Nic();
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  const std::string& name() const { return name_; }

  /// Register local memory so peers may Get from / Put into it.
  StatusOr<MemRegion> register_memory(void* addr, std::size_t len);

  /// Unregister; outstanding remote operations against the region fail.
  Status unregister_memory(const MemRegion& region);

  /// Enqueue a small message into the peer's receive queue (FMA-Put-style).
  /// Fails with kResourceExhausted when the peer queue is full.
  /// Thread-safe (per-NIC mutex): each RDMA link owns a dedicated tx/rx
  /// NIC pair, so concurrent sends on different links only meet at the
  /// fabric's name-lookup mutex, never on a queue.
  Status put_message(const std::string& peer, ByteView msg);

  /// Scatter-gather put_message: the message is the concatenation of
  /// `frags`, gathered once into the queue entry itself (one copy total
  /// instead of flat-encode + enqueue).
  Status put_message_iov(const std::string& peer,
                         std::span<const ByteView> frags);

  /// Dequeue the next small message; blocks up to `timeout`.
  Status poll_message(std::vector<std::byte>* out,
                      std::chrono::nanoseconds timeout);

  /// One-sided read of [offset, offset+dst.size()) from the peer's
  /// registered region into local memory (BTE-Get-style).
  Status get(const std::string& peer, const MemRegion& remote,
             std::uint64_t offset, MutableByteView dst);

  /// One-sided write into the peer's registered region.
  Status put(const std::string& peer, ByteView src, const MemRegion& remote,
             std::uint64_t offset);

  /// Liveness probe: true while `peer`'s NIC is still on the fabric. Sync
  /// senders use it to abandon ack waits on a destroyed receiver instead of
  /// burning the full timeout. Bypasses the fault hook (a real NIC learns
  /// of a torn-down peer from the connection state, not from traffic).
  bool peer_alive(const std::string& peer) const;

  NicStats stats() const;

 private:
  friend class Fabric;
  Nic(Fabric* fabric, std::string name, std::size_t queue_depth);

  struct Region {
    std::byte* addr;
    std::uint64_t len;
  };

  Fabric* fabric_;
  std::string name_;
  std::size_t queue_depth_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::vector<std::byte>> message_queue_;
  std::map<std::uint64_t, Region> regions_;
  std::uint64_t next_key_ = 1;
  NicStats stats_;

  Status put_message_impl(const std::string& peer,
                          std::vector<std::byte>&& msg);

  // Called by peers (any thread). Takes ownership of the frame.
  Status deliver(std::vector<std::byte>&& msg);
  Status read_region(std::uint64_t key, std::uint64_t offset,
                     MutableByteView dst);
  Status write_region(std::uint64_t key, std::uint64_t offset, ByteView src);
};

/// The interconnect: a registry of NICs plus the fault-injection hook.
/// Thread-safe; NICs may be created and destroyed from any thread.
class Fabric {
 public:
  Fabric() = default;

  /// Create an endpoint. Names must be unique while the NIC lives.
  StatusOr<std::shared_ptr<Nic>> create_nic(const std::string& name,
                                            std::size_t queue_depth = 1024);

  /// Check a peer exists (NNTI Connect). With a fault injector installed,
  /// this is also the retryable step the timeout-and-retry logic wraps.
  Status connect(const std::string& from, const std::string& to);

  /// Install (or clear, with nullptr) the fail-only fault injector.
  /// Convenience wrapper over set_fault_hook.
  void set_fault_injector(FaultInjector injector);

  /// Install (or clear, with nullptr) the full fault hook (fail, delay,
  /// duplicate, drop). Replaces any previously installed hook/injector.
  void set_fault_hook(FaultHook hook);

 private:
  friend class Nic;
  std::shared_ptr<Nic> lookup(const std::string& name);
  Status inject(Op op, const std::string& local, const std::string& peer);
  FaultAction inject_action(Op op, const std::string& local,
                            const std::string& peer);
  void remove(const std::string& name);

  std::mutex mutex_;
  std::map<std::string, std::weak_ptr<Nic>> nics_;
  FaultHook hook_;
};

}  // namespace flexio::nnti
