// Multilevel graph partitioner (the SCOTCH stand-in).
//
// Recursive bisection with the classic multilevel scheme: heavy-edge
// matching coarsens the graph, a greedy region-growing heuristic bisects
// the coarsest level, and the cut is refined on the way back up with
// swap-based Kernighan-Lin passes. Part sizes are exact (process-to-core
// binding requires it), and results are deterministic.
#pragma once

#include <vector>

#include "placement/graph.h"
#include "util/status.h"

namespace flexio::placement {

/// Partition into parts with exact target sizes (targets must sum to the
/// vertex count; every target >= 0). Returns part id per vertex.
StatusOr<std::vector<int>> partition_sizes(const CommGraph& graph,
                                           const std::vector<int>& targets);

/// Equal-size convenience: n need not divide evenly; remainders spread
/// over the first parts.
StatusOr<std::vector<int>> partition(const CommGraph& graph, int parts);

/// Partition only `vertices` (a subset of the graph) into parts with exact
/// `targets` sizes. Returns one part id per entry of `vertices`, in order.
/// Used by the tree mapper's dual recursive bipartitioning.
StatusOr<std::vector<int>> partition_subset(const CommGraph& graph,
                                            const std::vector<int>& vertices,
                                            const std::vector<int>& targets);

}  // namespace flexio::placement
