#include "util/trace.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "util/log.h"
#include "util/strings.h"

namespace flexio::trace {

namespace {

bool env_on(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return false;
  return std::string_view(v) == "1" || std::string_view(v) == "true" ||
         std::string_view(v) == "on";
}

constexpr std::size_t kDefaultCapacity = 4096;
constexpr std::size_t kMinCapacity = 64;

std::size_t env_ring_capacity() {
  const char* v = std::getenv("FLEXIO_TRACE_RING");
  if (!v || !*v) return kDefaultCapacity;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || (end && *end != '\0') || n < kMinCapacity) {
    FLEXIO_LOG(kWarn) << "ignoring FLEXIO_TRACE_RING=" << v
                      << " (must be an integer >= " << kMinCapacity << ")";
    return kDefaultCapacity;
  }
  return static_cast<std::size_t>(n);
}

std::atomic<bool> g_enabled{env_on("FLEXIO_TRACE")};

/// Global bounded span store. One mutex acquisition per completed span;
/// writers never hold it while the span body runs.
class Ring {
 public:
  static Ring& instance() {
    static Ring* r = new Ring;  // leaked: spans may end during shutdown
    return *r;
  }

  void push(const SpanRecord& rec) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (records_.size() < capacity_) {
      records_.push_back(rec);
    } else {
      records_[head_] = rec;
      head_ = (head_ + 1) % capacity_;
      wrapped_ = true;
    }
  }

  void set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    records_.clear();
    records_.reserve(capacity_);
    head_ = 0;
    wrapped_ = false;
  }

  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
    head_ = 0;
    wrapped_ = false;
  }

  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanRecord> out;
    out.reserve(records_.size());
    if (!wrapped_) {
      out = records_;
    } else {
      // head_ points at the oldest record once the ring has wrapped.
      out.insert(out.end(), records_.begin() + static_cast<long>(head_),
                 records_.end());
      out.insert(out.end(), records_.begin(),
                 records_.begin() + static_cast<long>(head_));
    }
    return out;
  }

 private:
  Ring() : capacity_(env_ring_capacity()) { records_.reserve(capacity_); }
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<SpanRecord> records_;
  std::size_t head_ = 0;
  bool wrapped_ = false;
};

std::uint32_t this_thread_trace_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::uint32_t t_pid = 0;

/// Parent adopted by root spans (empty open stack) on this thread; set by
/// TaskScope so pool-task spans nest under the span that submitted them.
thread_local std::uint64_t t_parent_hint = 0;

/// Per-thread stack of open span ids, for parent/depth bookkeeping.
struct OpenStack {
  std::vector<std::uint64_t> ids;
};
OpenStack& open_stack() {
  thread_local OpenStack stack;
  return stack;
}

/// Per-thread step annotation, managed by StepScope.
struct StepAnnotation {
  std::uint64_t stream_id = 0;
  std::int64_t step = -1;
  std::uint64_t peer_span = 0;
};
StepAnnotation& step_annotation() {
  thread_local StepAnnotation ann;
  return ann;
}

std::atomic<std::uint64_t> g_next_span_id{1};

/// Escape a span name for JSON (names are identifiers in practice, but a
/// stray quote must not corrupt the export).
std::string json_escape(const char* s) {
  std::string out;
  for (; s && *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

std::string chrome_json_impl(bool filter_pid, std::uint32_t pid) {
  std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  std::string body;
  for (const SpanRecord& s : spans) {
    if (filter_pid && s.pid != pid) continue;
    if (!first) body += ",\n";
    first = false;
    body += str_format(
        "{\"name\": \"%s\", \"cat\": \"flexio\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, \"tid\": %u, "
        "\"args\": {\"id\": %llu, \"parent\": %llu, \"depth\": %u",
        json_escape(s.name).c_str(), static_cast<double>(s.start_ns) / 1e3,
        static_cast<double>(s.end_ns - s.start_ns) / 1e3, s.pid, s.tid,
        static_cast<unsigned long long>(s.id),
        static_cast<unsigned long long>(s.parent), s.depth);
    if (s.stream_id != 0) {
      body += str_format(", \"stream\": %llu",
                         static_cast<unsigned long long>(s.stream_id));
    }
    if (s.step >= 0) {
      body += str_format(", \"step\": %lld", static_cast<long long>(s.step));
    }
    if (s.peer_span != 0) {
      body += str_format(", \"peer\": %llu",
                         static_cast<unsigned long long>(s.peer_span));
    }
    if (s.remote_ns != 0) {
      body += str_format(", \"remote_ns\": %llu",
                         static_cast<unsigned long long>(s.remote_ns));
    }
    body += "}}";
  }
  out += body;
  if (!first) out += "\n";
  out += "]}\n";
  return out;
}

Status write_json_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open trace file: " + path);
  }
  out << text;
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "trace file write failed");
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void set_capacity(std::size_t capacity) {
  Ring::instance().set_capacity(capacity);
}

void set_ring_capacity(std::size_t capacity) {
  if (capacity < kMinCapacity) {
    FLEXIO_LOG(kWarn) << "trace ring capacity " << capacity
                      << " rejected (minimum " << kMinCapacity
                      << "); keeping " << Ring::instance().capacity();
    return;
  }
  Ring::instance().set_capacity(capacity);
}

std::size_t ring_capacity() { return Ring::instance().capacity(); }

std::vector<SpanRecord> snapshot() { return Ring::instance().snapshot(); }

void reset() { Ring::instance().reset(); }

void set_thread_pid(std::uint32_t pid) { t_pid = pid; }

std::uint32_t thread_pid() { return t_pid; }

std::uint64_t current_span_id() {
  OpenStack& stack = open_stack();
  return stack.ids.empty() ? 0 : stack.ids.back();
}

void clock_sample(std::uint64_t remote_ns) {
  if (!enabled() || remote_ns == 0) return;
  const StepAnnotation& ann = step_annotation();
  SpanRecord rec;
  rec.name = kClockSampleName;
  rec.start_ns = rec.end_ns = metrics::now_ns();
  rec.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  rec.parent = current_span_id();
  rec.tid = this_thread_trace_id();
  rec.depth = static_cast<std::uint32_t>(open_stack().ids.size());
  rec.pid = t_pid;
  rec.stream_id = ann.stream_id;
  rec.step = ann.step;
  rec.remote_ns = remote_ns;
  Ring::instance().push(rec);
}

void Span::begin(const char* name) {
  armed_ = true;
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  OpenStack& stack = open_stack();
  parent_ = stack.ids.empty() ? t_parent_hint : stack.ids.back();
  depth_ = static_cast<std::uint32_t>(stack.ids.size());
  stack.ids.push_back(id_);
  start_ = metrics::now_ns();
}

void Span::end() {
  const StepAnnotation& ann = step_annotation();
  SpanRecord rec;
  rec.name = name_;
  rec.start_ns = start_;
  rec.end_ns = metrics::now_ns();
  rec.id = id_;
  rec.parent = parent_;
  rec.tid = this_thread_trace_id();
  rec.depth = depth_;
  rec.pid = t_pid;
  rec.stream_id = ann.stream_id;
  rec.step = ann.step;
  rec.peer_span = ann.peer_span;
  OpenStack& stack = open_stack();
  // Spans are scoped objects, so per-thread teardown is LIFO by
  // construction; tolerate a mismatch (span moved across an unwind) by
  // popping back to our own id.
  while (!stack.ids.empty() && stack.ids.back() != id_) stack.ids.pop_back();
  if (!stack.ids.empty()) stack.ids.pop_back();
  Ring::instance().push(rec);
}

TaskContext TaskContext::capture() {
  // Captured unconditionally (thread-local reads only): a scope applied on
  // a worker must restore-to-correct state even when tracing toggles
  // between capture and execution.
  TaskContext ctx;
  const StepAnnotation& ann = step_annotation();
  ctx.pid = t_pid;
  ctx.parent_span = current_span_id();
  ctx.stream_id = ann.stream_id;
  ctx.step = ann.step;
  ctx.peer_span = ann.peer_span;
  return ctx;
}

TaskScope::TaskScope(const TaskContext& ctx) {
  StepAnnotation& ann = step_annotation();
  prev_pid_ = t_pid;
  prev_parent_hint_ = t_parent_hint;
  prev_stream_ = ann.stream_id;
  prev_step_ = ann.step;
  prev_peer_ = ann.peer_span;
  t_pid = ctx.pid;
  t_parent_hint = ctx.parent_span;
  ann.stream_id = ctx.stream_id;
  ann.step = ctx.step;
  ann.peer_span = ctx.peer_span;
}

TaskScope::~TaskScope() {
  StepAnnotation& ann = step_annotation();
  t_pid = prev_pid_;
  t_parent_hint = prev_parent_hint_;
  ann.stream_id = prev_stream_;
  ann.step = prev_step_;
  ann.peer_span = prev_peer_;
}

StepScope::StepScope(std::uint64_t stream_id, std::int64_t step,
                     std::uint64_t peer_span) {
  StepAnnotation& ann = step_annotation();
  prev_stream_ = ann.stream_id;
  prev_step_ = ann.step;
  prev_peer_ = ann.peer_span;
  ann.stream_id = stream_id;
  ann.step = step;
  ann.peer_span = peer_span;
}

StepScope::~StepScope() {
  StepAnnotation& ann = step_annotation();
  ann.stream_id = prev_stream_;
  ann.step = prev_step_;
  ann.peer_span = prev_peer_;
}

std::string chrome_json() { return chrome_json_impl(false, 0); }

std::string chrome_json_for(std::uint32_t pid) {
  return chrome_json_impl(true, pid);
}

Status write_chrome_json(const std::string& path) {
  return write_json_file(path, chrome_json());
}

Status write_chrome_json_for(const std::string& path, std::uint32_t pid) {
  return write_json_file(path, chrome_json_for(pid));
}

}  // namespace flexio::trace
