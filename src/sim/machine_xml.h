// User-defined machine descriptions from XML.
//
// The built-in titan()/smoky() models cover the paper's testbeds; sites
// reproducing the experiments on their own cluster describe it once:
//
//   <machine name="mycluster" nodes="128" sockets="2" cores-per-socket="12"
//            ghz="2.4" l3-mb="16" nic-gbps="12.5" nic-latency-us="1.0"
//            mem-local-gbps="10" mem-remote-gbps="6"
//            fs-aggregate-gbps="30" fs-per-node-gbps="1.5"/>
//
// Unspecified attributes keep MachineDesc's defaults.
#pragma once

#include "sim/machine.h"
#include "util/status.h"
#include "xml/xml.h"

namespace flexio::sim {

/// Parse a <machine> element. Bandwidth attributes are in GB/s (decimal),
/// cache in MiB, latency in microseconds.
StatusOr<MachineDesc> machine_from_xml(const xml::Element& element);

/// Parse from XML text whose root is <machine>.
StatusOr<MachineDesc> machine_from_xml_text(std::string_view text);

}  // namespace flexio::sim
