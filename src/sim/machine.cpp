#include "sim/machine.h"

namespace flexio::sim {

MachineDesc titan() {
  MachineDesc m;
  m.name = "titan";
  m.num_nodes = 18688;
  m.sockets_per_node = 2;   // Interlagos: 2 NUMA domains of 8 cores
  m.cores_per_socket = 8;
  m.core_ghz = 2.2;
  m.l3_bytes_per_socket = 8.0 * (1 << 20);
  m.mem_bw_local = 8e9;
  m.mem_bw_remote = 4.5e9;
  m.nic_bw = 5e9;           // Gemini per-direction effective
  m.nic_latency = 1.5e-6;
  m.rdma_reg_base = 60e-6;
  m.rdma_reg_per_byte = 1.0 / 30e9;
  m.fs_aggregate_bw = 40e9; // center-wide Lustre (Spider)
  m.fs_per_node_bw = 1.2e9;
  m.fs_open_latency = 5e-3;
  return m;
}

MachineDesc smoky() {
  MachineDesc m;
  m.name = "smoky";
  m.num_nodes = 80;
  m.sockets_per_node = 4;   // Figure 5: four quad-core Barcelona packages
  m.cores_per_socket = 4;
  m.core_ghz = 2.0;
  m.l3_bytes_per_socket = 2.0 * (1 << 20);
  m.mem_bw_local = 6e9;
  m.mem_bw_remote = 3e9;
  m.nic_bw = 1.5e9;         // DDR InfiniBand per-direction effective
  m.nic_latency = 5e-6;
  m.rdma_reg_base = 100e-6;
  m.rdma_reg_per_byte = 1.0 / 20e9;
  m.fs_aggregate_bw = 10e9;
  m.fs_per_node_bw = 0.8e9;
  m.fs_open_latency = 8e-3;
  return m;
}

}  // namespace flexio::sim
