#include "nnti/registration_cache.h"

#include <bit>

namespace flexio::nnti {

RegistrationCache::RegistrationCache(Nic* nic, std::size_t capacity_bytes)
    : nic_(nic), capacity_bytes_(capacity_bytes) {
  FLEXIO_CHECK(nic != nullptr);
  FLEXIO_CHECK(capacity_bytes >= kMinClassBytes);
}

RegistrationCache::~RegistrationCache() {
  for (auto& shelf : shelves_) {
    for (RegisteredBuffer& buf : shelf) {
      (void)nic_->unregister_memory(buf.region);
      delete[] buf.data;
    }
  }
}

std::uint32_t RegistrationCache::class_for(std::size_t size) {
  if (size <= kMinClassBytes) return 0;
  const auto rounded = std::bit_ceil(size);
  return static_cast<std::uint32_t>(std::countr_zero(rounded) -
                                    std::countr_zero(kMinClassBytes));
}

std::size_t RegistrationCache::class_capacity(std::uint32_t size_class) {
  return kMinClassBytes << size_class;
}

StatusOr<RegisteredBuffer> RegistrationCache::acquire(std::size_t size) {
  const std::uint32_t cls = class_for(size);
  const std::size_t cap = class_capacity(cls);

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.acquisitions;
  if (cls >= shelves_.size()) shelves_.resize(cls + 1);
  auto& shelf = shelves_[cls];
  if (!shelf.empty()) {
    RegisteredBuffer buf = shelf.back();
    shelf.pop_back();
    ++stats_.hits;
    return buf;
  }
  // Reclaim free buffers elsewhere if we're over budget before growing.
  if (stats_.bytes_held + cap > capacity_bytes_) {
    for (auto& other : shelves_) {
      while (!other.empty() && stats_.bytes_held + cap > capacity_bytes_) {
        reclaim_locked(other.back());
        other.pop_back();
      }
    }
  }
  RegisteredBuffer buf;
  buf.data = new std::byte[cap];
  buf.capacity = cap;
  buf.size_class = cls;
  auto region = nic_->register_memory(buf.data, cap);
  if (!region.is_ok()) {
    delete[] buf.data;
    return region.status();
  }
  buf.region = region.value();
  ++stats_.registrations;
  stats_.bytes_held += cap;
  return buf;
}

void RegistrationCache::release(RegisteredBuffer buffer) {
  if (!buffer) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.bytes_held > capacity_bytes_) {
    reclaim_locked(buffer);
    return;
  }
  FLEXIO_CHECK(buffer.size_class < shelves_.size());
  shelves_[buffer.size_class].push_back(buffer);
}

void RegistrationCache::reclaim_locked(RegisteredBuffer& buf) {
  (void)nic_->unregister_memory(buf.region);
  delete[] buf.data;
  FLEXIO_CHECK(stats_.bytes_held >= buf.capacity);
  stats_.bytes_held -= buf.capacity;
  ++stats_.reclamations;
  buf.data = nullptr;
}

RegistrationCacheStats RegistrationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace flexio::nnti
