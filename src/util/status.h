// Error handling for the FlexIO reproduction.
//
// Recoverable failures (bad config, timeouts, end-of-stream, missing files)
// travel through Status / StatusOr<T>; programmer errors abort via
// FLEXIO_CHECK. This mirrors the middleware's C heritage (ADIOS returns error
// codes) while staying idiomatic C++.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/common.h"

namespace flexio {

/// Error category, stable across the public API.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // name lookup failed (stream, variable, file)
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// call sequencing violated (write before open, ...)
  kOutOfRange,        // index / selection outside bounds
  kResourceExhausted, // buffer pool / queue / memory limits
  kTimeout,           // data movement timed out (paper: timeout-and-retry)
  kEndOfStream,       // writer closed the stream (normal termination signal)
  kUnavailable,       // transient transport failure, retryable
  kInternal,          // invariant broke inside the runtime
  kUnimplemented,
};

/// Human-readable name of an ErrorCode ("kTimeout" -> "timeout").
std::string_view error_code_name(ErrorCode code);

/// Value-semantic error carrier; cheap when OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "timeout: fetch of var 'zion' exceeded 5000ms" or "ok".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

Status make_error(ErrorCode code, std::string message);

/// Either a T or an error Status. Minimal expected<T, Status>.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    FLEXIO_CHECK(!std::get<Status>(rep_).is_ok());
  }

  bool is_ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return is_ok(); }

  /// Status of the operation; ok when a value is present.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(rep_);
  }

  /// The contained value. Aborts when called on an error.
  T& value() & {
    FLEXIO_CHECK(is_ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    FLEXIO_CHECK(is_ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    FLEXIO_CHECK(is_ok());
    return std::get<T>(std::move(rep_));
  }

  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace flexio

/// Propagate an error Status from the current function.
#define FLEXIO_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::flexio::Status flexio_status_ = (expr);         \
    if (!flexio_status_.is_ok()) return flexio_status_; \
  } while (0)
