// S3D_Box-like combustion workload generator.
//
// S3D performs direct numerical simulation of turbulent combustion; the
// paper's S3D_Box variant periodically outputs species data as 22 3-D
// double arrays, ~1.7 MB total per process per I/O action, decomposed in
// 3-D blocks (Section IV.B). The skeleton reproduces that profile with a
// cheap reaction-diffusion-style update, deterministic in (seed, rank).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "adios/var.h"
#include "util/rng.h"

namespace flexio::apps {

inline constexpr int kS3dSpecies = 22;

class S3dRank {
 public:
  /// One rank of an S3D_Box run over `global` grid points, decomposed in
  /// 3-D blocks across `ranks_per_dim[d]` ranks per dimension.
  S3dRank(const adios::Dims& global, const std::array<int, 3>& ranks_per_dim,
          int rank, std::uint64_t seed = 7);

  int rank() const { return rank_; }
  const adios::Box& block() const { return block_; }
  const adios::Dims& global() const { return global_; }

  /// One solver cycle: diffusion + reaction source terms per species.
  void advance();

  /// Species field s, dense row-major over this rank's block.
  const std::vector<double>& species(int s) const {
    return fields_[static_cast<std::size_t>(s)];
  }
  adios::VarMeta species_meta(int s) const;
  static std::string species_name(int s);

 private:
  int rank_;
  adios::Dims global_;
  adios::Box block_;
  Rng rng_;
  std::vector<std::vector<double>> fields_;
};

/// Most-cubic factorization of `ranks` into 3 factors (x, y, z).
std::array<int, 3> s3d_decompose(int ranks);

}  // namespace flexio::apps
