// Shared last-level cache interference model.
//
// Figure 8 of the paper shows GTS suffering 47% more L3 misses per kilo-
// instruction (and 4.1% longer simulation time) when analytics share its
// L3. We model the effect with a capacity-partitioning law: co-runners on
// one socket receive L3 space in proportion to their working-set demand,
// and an application's miss rate grows as a power law of its lost capacity
// (the standard sqrt-law approximation of cache miss curves, alpha = 0.5).
#pragma once

#include "util/common.h"

namespace flexio::sim {

/// One workload's cache behaviour on a socket.
struct CacheWorkload {
  double working_set_bytes = 0;  // L3-resident demand
  double base_mpki = 0;          // misses/kilo-instruction with full L3
  double mem_sensitivity = 0;    // fraction of runtime bound by L3 misses
};

/// Effective L3 capacity a workload receives when sharing a socket cache
/// with co-runners whose demands sum to `corunner_ws_bytes`.
double effective_l3(double l3_bytes, double own_ws_bytes,
                    double corunner_ws_bytes);

/// Miss rate (MPKI) after capacity loss. With the full cache the base rate
/// applies; shrinking capacity below the working set inflates misses as
/// (ws / effective)^alpha with alpha = 0.5.
double inflated_mpki(const CacheWorkload& w, double effective_l3_bytes);

/// Runtime multiplier caused by a miss-rate increase: the memory-bound
/// fraction of execution scales with the miss ratio, the rest is unchanged.
double slowdown_factor(const CacheWorkload& w, double new_mpki);

/// Convenience: slowdown of workload `w` when co-located on a socket of
/// `l3_bytes` with co-runners of total working set `corunner_ws_bytes`.
double corun_slowdown(const CacheWorkload& w, double l3_bytes,
                      double corunner_ws_bytes);

}  // namespace flexio::sim
