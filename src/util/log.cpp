#include "util/log.h"

#include <cstdio>
#include <mutex>

namespace flexio {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void log_emit(LogLevel level, const char* file, int line,
              const std::string& message) {
  // Strip directories so logs stay readable.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[flexio %s %s:%d] %s\n", level_tag(level), base, line,
               message.c_str());
}

}  // namespace detail
}  // namespace flexio
