#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace flexio::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> parse_document() {
    auto v = parse_value();
    if (!v.is_ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return v;
  }

 private:
  Status error(const std::string& what) const {
    return make_error(ErrorCode::kInvalidArgument,
                      "json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  StatusOr<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.is_ok()) return s.status();
      return Value(std::move(s).value());
    }
    if (consume_word("null")) return Value();
    if (consume_word("true")) return Value(true);
    if (consume_word("false")) return Value(false);
    return parse_number();
  }

  StatusOr<std::string> parse_string() {
    if (!consume('"')) return error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          default:
            return error(std::string("unsupported escape \\") + esc);
        }
      } else {
        out.push_back(c);
      }
    }
    return error("unterminated string");
  }

  StatusOr<Value> parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return error("bad number: " + tok);
    return Value(v);
  }

  StatusOr<Value> parse_array() {
    consume('[');
    Array out;
    skip_ws();
    if (consume(']')) return Value(std::move(out));
    for (;;) {
      auto v = parse_value();
      if (!v.is_ok()) return v;
      out.push_back(std::move(v).value());
      skip_ws();
      if (consume(']')) return Value(std::move(out));
      if (!consume(',')) return error("expected ',' or ']'");
    }
  }

  StatusOr<Value> parse_object() {
    consume('{');
    Object out;
    skip_ws();
    if (consume('}')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key.is_ok()) return key.status();
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      auto v = parse_value();
      if (!v.is_ok()) return v;
      out.emplace(std::move(key).value(), std::move(v).value());
      skip_ws();
      if (consume('}')) return Value(std::move(out));
      if (!consume(',')) return error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace flexio::json
