// Shared fixed-size worker pool for batch-parallel data-path work.
//
// The pool runs *batches*: run_batch() publishes a vector of tasks, the
// calling thread drains them alongside the workers (so a pool constructed
// with zero workers degrades to inline, submission-order execution -- the
// serial code path, not a special case), and returns once every task has
// finished. Tasks are claimed by atomic index, so a batch of N tasks is
// executed exactly once each, in submission order whenever execution is
// inline.
//
// Error semantics (DESIGN.md "Parallel pack"): every task runs to
// completion regardless of earlier failures -- by the time one task fails,
// its siblings are already in flight, and the writer's tolerated-loss
// handling must see each reader's own outcome. run_batch() returns the
// Status of the lowest-indexed failing task (first-error-wins,
// deterministic across interleavings). A task that throws has its
// exception captured on the executing thread and the lowest-indexed one
// rethrown on the caller after the join, so gtest assertions and logic
// errors surface where the batch was submitted.
//
// The pool is the process's only packing thread family: workers poll the
// flight recorder's cooperative sampling hook between tasks
// (flight::maybe_sample()), so a cooperative-mode recorder keeps sampling
// while a long pack batch runs without a second sampler thread.
//
// Metrics: flexio.pool.tasks counts tasks executed; flexio.pool.queue_ns
// (publish -> claim) and flexio.pool.exec_ns (claim -> finish) histograms
// attribute where batch wall-clock goes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace flexio::util {

class WorkPool {
 public:
  using Task = std::function<Status()>;

  /// Spawns `workers` threads (0 is valid: run_batch executes inline).
  explicit WorkPool(int workers);

  /// Joins the workers. A batch in flight is finished by its caller (which
  /// owns the batch state and keeps draining), never abandoned.
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Run every task to completion; the calling thread participates in the
  /// drain. Returns the lowest-indexed task failure (ok when all passed).
  /// Rethrows the lowest-indexed captured exception after the batch joins.
  Status run_batch(std::vector<Task> tasks);

  /// Detached execution: enqueue `fn` to run on a worker when one frees up;
  /// the caller does not wait. A zero-worker pool runs it inline before
  /// returning (the serial degenerate case, mirroring run_batch), as does a
  /// submit that races pool shutdown -- "submitted implies executed" holds
  /// unconditionally, and the destructor drains any tasks still queued.
  /// Detached tasks report failure through their own channels (they out-
  /// live the call site); they must not throw.
  void submit(std::function<void()> fn);

  /// FLEXIO_PACK_THREADS, or `fallback` when unset/invalid. The value is
  /// the total packing concurrency including the submitting thread, so a
  /// caller wanting a pool passes (value - 1) workers.
  static int env_pack_threads(int fallback);

  /// FLEXIO_READ_THREADS: the reader-side unpack mirror of
  /// env_pack_threads, same range and total-concurrency semantics.
  static int env_read_threads(int fallback);

 private:
  struct Batch {
    std::vector<Task>* tasks = nullptr;
    std::vector<Status>* statuses = nullptr;          // pre-sized, slot per task
    std::vector<std::exception_ptr>* exceptions = nullptr;
    std::atomic<std::size_t> next{0};  // claim cursor
    std::size_t remaining = 0;         // guarded by pool mutex
    int active_workers = 0;            // workers inside drain(), pool mutex
    std::uint64_t publish_ns = 0;
  };

  void worker_loop();
  void drain(Batch* batch);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here for work / stop
  std::condition_variable done_cv_;  // run_batch waits here for completion
  Batch* batch_ = nullptr;           // guarded by mutex_
  std::deque<std::function<void()>> detached_;  // guarded by mutex_
  std::uint64_t generation_ = 0;     // bumped per published batch
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace flexio::util
