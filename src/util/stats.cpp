#include "util/stats.h"

namespace flexio {

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double Percentiles::quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] + (values_[hi] - values_[lo]) * frac;
}

}  // namespace flexio
