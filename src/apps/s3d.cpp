#include "apps/s3d.h"

#include <cmath>

namespace flexio::apps {

std::array<int, 3> s3d_decompose(int ranks) {
  int x = static_cast<int>(std::cbrt(static_cast<double>(ranks)));
  while (x > 1 && ranks % x != 0) --x;
  const int rest = ranks / x;
  int y = static_cast<int>(std::sqrt(static_cast<double>(rest)));
  while (y > 1 && rest % y != 0) --y;
  return {x, y, rest / y};
}

namespace {

adios::Box block_for(const adios::Dims& global,
                     const std::array<int, 3>& ranks_per_dim, int rank) {
  FLEXIO_CHECK(global.size() == 3);
  const int rx = ranks_per_dim[0], ry = ranks_per_dim[1], rz = ranks_per_dim[2];
  const int ix = rank / (ry * rz);
  const int iy = (rank / rz) % ry;
  const int iz = rank % rz;
  adios::Box box;
  box.offset.resize(3);
  box.count.resize(3);
  const adios::Box bx = adios::block_decompose(global, rx, ix, 0);
  const adios::Box by = adios::block_decompose(global, ry, iy, 1);
  const adios::Box bz = adios::block_decompose(global, rz, iz, 2);
  box.offset = {bx.offset[0], by.offset[1], bz.offset[2]};
  box.count = {bx.count[0], by.count[1], bz.count[2]};
  return box;
}

}  // namespace

S3dRank::S3dRank(const adios::Dims& global,
                 const std::array<int, 3>& ranks_per_dim, int rank,
                 std::uint64_t seed)
    : rank_(rank),
      global_(global),
      block_(block_for(global, ranks_per_dim, rank)),
      rng_(seed * 7919ULL + static_cast<std::uint64_t>(rank)) {
  fields_.resize(kS3dSpecies);
  const std::uint64_t n = block_.elements();
  for (int s = 0; s < kS3dSpecies; ++s) {
    auto& field = fields_[static_cast<std::size_t>(s)];
    field.resize(n);
    // Smooth species blobs: a species-specific plane wave plus noise, in
    // global coordinates so neighbouring blocks line up seamlessly.
    const double kx = 0.07 * (s + 1);
    const double ky = 0.05 * (s % 5 + 1);
    const double kz = 0.09 * (s % 3 + 1);
    std::size_t i = 0;
    for (std::uint64_t x = 0; x < block_.count[0]; ++x) {
      for (std::uint64_t y = 0; y < block_.count[1]; ++y) {
        for (std::uint64_t z = 0; z < block_.count[2]; ++z) {
          const double gx = static_cast<double>(block_.offset[0] + x);
          const double gy = static_cast<double>(block_.offset[1] + y);
          const double gz = static_cast<double>(block_.offset[2] + z);
          field[i++] = 0.5 + 0.4 * std::sin(kx * gx + ky * gy + kz * gz) +
                       0.02 * rng_.next_gaussian();
        }
      }
    }
  }
}

void S3dRank::advance() {
  const auto nx = block_.count[0];
  const auto ny = block_.count[1];
  const auto nz = block_.count[2];
  auto at = [&](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
    return (x * ny + y) * nz + z;
  };
  std::vector<double> next;
  for (int s = 0; s < kS3dSpecies; ++s) {
    auto& field = fields_[static_cast<std::size_t>(s)];
    next = field;
    for (std::uint64_t x = 0; x < nx; ++x) {
      for (std::uint64_t y = 0; y < ny; ++y) {
        for (std::uint64_t z = 0; z < nz; ++z) {
          const double c = field[at(x, y, z)];
          // Diffusion (clamped 6-point stencil) ...
          double lap = -6.0 * c;
          lap += field[at(x > 0 ? x - 1 : x, y, z)];
          lap += field[at(x + 1 < nx ? x + 1 : x, y, z)];
          lap += field[at(x, y > 0 ? y - 1 : y, z)];
          lap += field[at(x, y + 1 < ny ? y + 1 : y, z)];
          lap += field[at(x, y, z > 0 ? z - 1 : z)];
          lap += field[at(x, y, z + 1 < nz ? z + 1 : z)];
          // ... plus a logistic reaction source.
          next[at(x, y, z)] = c + 0.08 * lap + 0.02 * c * (1.0 - c);
        }
      }
    }
    field.swap(next);
  }
}

adios::VarMeta S3dRank::species_meta(int s) const {
  return adios::global_array_var(species_name(s), serial::DataType::kDouble,
                                 global_, block_);
}

std::string S3dRank::species_name(int s) {
  static const char* kNames[kS3dSpecies] = {
      "H2", "O2", "O",   "OH",   "H2O",  "H",    "HO2",  "H2O2",
      "CO", "CO2", "HCO", "CH2O", "CH3",  "CH4",  "CH3O", "C2H2",
      "C2H4", "C2H6", "NO", "NO2", "N2O", "N2"};
  FLEXIO_CHECK(s >= 0 && s < kS3dSpecies);
  return kNames[s];
}

}  // namespace flexio::apps
