// Data Conditioning plug-ins: mobile codelets on the I/O path (Section II.F).
//
// Shows both execution sides with the same CoD-mini language:
//  * a writer-side plug-in (shipped as source, compiled inside the
//    producing program) that samples every 4th particle row;
//  * a reader-side plug-in that converts units on a global array after
//    receive.
#include <cstdio>
#include <thread>
#include <vector>

#include "cod/plugin.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"

using namespace flexio;

int main() {
  Runtime runtime;
  runtime.set_plugin_compiler(cod::make_plugin_compiler());
  Program sim("sim", 1);
  Program viz("viz", 1);
  xml::MethodConfig method;
  method.method = "FLEXIO";

  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "dcdemo";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = method;
    auto w = runtime.open_writer(spec);
    FLEXIO_CHECK(w.is_ok());

    // 16 particles x 2 attrs, and a 1-D temperature field in Kelvin.
    std::vector<double> particles;
    for (int p = 0; p < 16; ++p) {
      particles.push_back(p);          // id
      particles.push_back(p * 0.5);    // velocity
    }
    std::vector<double> kelvin{273.15, 293.15, 373.15, 1273.15};
    FLEXIO_CHECK(w.value()->begin_step(0).is_ok());
    FLEXIO_CHECK(
        w.value()
            ->write(adios::local_array_var("particles",
                                           serial::DataType::kDouble, {16, 2}),
                    as_bytes_view(std::span<const double>(particles)))
            .is_ok());
    FLEXIO_CHECK(w.value()
                     ->write(adios::global_array_var(
                                 "temperature", serial::DataType::kDouble, {4},
                                 adios::Box{{0}, {4}}),
                             as_bytes_view(std::span<const double>(kelvin)))
                     .is_ok());
    FLEXIO_CHECK(w.value()->end_step().is_ok());
    FLEXIO_CHECK(w.value()->close().is_ok());
    std::printf("[writer] executed %llu plug-in pieces inside the producer\n",
                static_cast<unsigned long long>(
                    w.value()->monitor().count("plugin.pieces")));
  });

  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "dcdemo";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{1, 0}};
    spec.method = method;
    auto r = runtime.open_reader(spec);
    FLEXIO_CHECK(r.is_ok());

    // Writer-side sampling: every 4th particle row, decided by the reader,
    // executed by the writer ("created on the reader side to customize
    // writer-side outputs on the fly").
    FLEXIO_CHECK(r.value()
                     ->install_plugin("particles", R"(
                       void transform() {
                         int row;
                         for (row = 0; row < rows; row = row + 4)
                           keep_row(row);
                       })",
                                      /*run_at_writer=*/true)
                     .is_ok());
    // Reader-side unit conversion: Kelvin -> Celsius after receive.
    FLEXIO_CHECK(r.value()
                     ->install_plugin("temperature", R"(
                       void transform() {
                         int i;
                         for (i = 0; i < n; i = i + 1)
                           emit(input[i] - 273.15);
                       })",
                                      /*run_at_writer=*/false)
                     .is_ok());

    auto step = r.value()->begin_step();
    FLEXIO_CHECK(step.is_ok());
    FLEXIO_CHECK(r.value()->schedule_read_pg(0).is_ok());
    std::vector<double> celsius(4);
    FLEXIO_CHECK(r.value()
                     ->schedule_read("temperature", adios::Box{{0}, {4}},
                                     MutableByteView(std::as_writable_bytes(
                                         std::span<double>(celsius))))
                     .is_ok());
    FLEXIO_CHECK(r.value()->perform_reads().is_ok());

    const PgBlock& block = r.value()->pg_blocks().at(0);
    const auto* rows = reinterpret_cast<const double*>(block.payload.data());
    std::printf("[reader] sampled particles (%llu of 16 rows): ids ",
                static_cast<unsigned long long>(block.meta.block.count[0]));
    for (std::uint64_t p = 0; p < block.meta.block.count[0]; ++p) {
      std::printf("%.0f ", rows[p * 2]);
    }
    std::printf("\n[reader] temperatures in Celsius: ");
    for (double t : celsius) std::printf("%.2f ", t);
    std::printf("\n");
    FLEXIO_CHECK(r.value()->end_step().is_ok());
    while (r.value()->begin_step().status().code() != ErrorCode::kEndOfStream) {
    }
  });

  writer.join();
  reader.join();
  return 0;
}
