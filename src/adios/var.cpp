#include "adios/var.h"

namespace flexio::adios {

Status VarMeta::validate() const {
  if (name.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "variable needs a name");
  }
  if (serial::size_of(type) == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "variables must use fixed-size element types: " + name);
  }
  switch (shape) {
    case ShapeKind::kScalar:
      if (!global_dims.empty() || !block.offset.empty()) {
        return make_error(ErrorCode::kInvalidArgument,
                          "scalar with dims: " + name);
      }
      return Status::ok();
    case ShapeKind::kLocalArray: {
      if (!block.valid() || block.ndim() == 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "local array needs a block: " + name);
      }
      for (std::uint64_t o : block.offset) {
        if (o != 0) {
          return make_error(ErrorCode::kInvalidArgument,
                            "local array offsets must be zero: " + name);
        }
      }
      return Status::ok();
    }
    case ShapeKind::kGlobalArray: {
      if (!block.valid() || block.ndim() != global_dims.size() ||
          global_dims.empty()) {
        return make_error(ErrorCode::kInvalidArgument,
                          "global array dims mismatch: " + name);
      }
      Box global{Dims(global_dims.size(), 0), global_dims};
      if (!contains(global, block)) {
        return make_error(ErrorCode::kOutOfRange,
                          "block outside global space: " + name);
      }
      return Status::ok();
    }
  }
  return make_error(ErrorCode::kInternal, "bad shape kind");
}

void VarMeta::encode(serial::BufWriter* w) const {
  w->put_string(name);
  w->put_u8(static_cast<std::uint8_t>(type));
  w->put_u8(static_cast<std::uint8_t>(shape));
  w->put_varint(global_dims.size());
  for (std::uint64_t d : global_dims) w->put_varint(d);
  w->put_varint(block.offset.size());
  for (std::uint64_t o : block.offset) w->put_varint(o);
  for (std::uint64_t c : block.count) w->put_varint(c);
}

StatusOr<VarMeta> VarMeta::decode(serial::BufReader* r) {
  VarMeta m;
  FLEXIO_RETURN_IF_ERROR(r->get_string(&m.name));
  std::uint8_t type = 0, shape = 0;
  FLEXIO_RETURN_IF_ERROR(r->get_u8(&type));
  FLEXIO_RETURN_IF_ERROR(r->get_u8(&shape));
  if (type > static_cast<std::uint8_t>(serial::DataType::kBytes) ||
      shape > static_cast<std::uint8_t>(ShapeKind::kGlobalArray)) {
    return make_error(ErrorCode::kInvalidArgument, "bad var meta tags");
  }
  m.type = static_cast<serial::DataType>(type);
  m.shape = static_cast<ShapeKind>(shape);
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(r->get_varint(&n));
  m.global_dims.resize(n);
  for (auto& d : m.global_dims) FLEXIO_RETURN_IF_ERROR(r->get_varint(&d));
  FLEXIO_RETURN_IF_ERROR(r->get_varint(&n));
  m.block.offset.resize(n);
  m.block.count.resize(n);
  for (auto& o : m.block.offset) FLEXIO_RETURN_IF_ERROR(r->get_varint(&o));
  for (auto& c : m.block.count) FLEXIO_RETURN_IF_ERROR(r->get_varint(&c));
  FLEXIO_RETURN_IF_ERROR(m.validate());
  return m;
}

VarMeta scalar_var(std::string name, serial::DataType type) {
  VarMeta m;
  m.name = std::move(name);
  m.type = type;
  m.shape = ShapeKind::kScalar;
  return m;
}

VarMeta local_array_var(std::string name, serial::DataType type, Dims count) {
  VarMeta m;
  m.name = std::move(name);
  m.type = type;
  m.shape = ShapeKind::kLocalArray;
  m.block.offset.assign(count.size(), 0);
  m.block.count = std::move(count);
  return m;
}

VarMeta global_array_var(std::string name, serial::DataType type,
                         Dims global_dims, Box block) {
  VarMeta m;
  m.name = std::move(name);
  m.type = type;
  m.shape = ShapeKind::kGlobalArray;
  m.global_dims = std::move(global_dims);
  m.block = std::move(block);
  return m;
}

}  // namespace flexio::adios
