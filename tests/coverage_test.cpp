// Additional edge-case and property coverage across modules: BP file
// round-trip properties, CoD language corners, flow-network invariants,
// XML parser corners, and monitoring trace output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "adios/bp_file.h"
#include "cod/parser.h"
#include "cod/plugin.h"
#include "cod/program.h"
#include "core/advisor.h"
#include "core/monitor.h"
#include "sim/engine.h"
#include "sim/flow_network.h"
#include "util/rng.h"
#include "xml/xml.h"

namespace flexio {
namespace {

using adios::Box;
using adios::Dims;
using serial::DataType;

// ------------------------------------------------ BP file property tests --

class BpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BpPropertyTest, RandomStreamsRoundTrip) {
  // Property: any mix of scalars, local arrays, and global arrays across
  // random writers/steps reads back exactly.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const std::string dir = ::testing::TempDir() + "/bp_prop_" +
                          std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const int writers = 1 + static_cast<int>(rng.next_below(4));
  const int steps = 1 + static_cast<int>(rng.next_below(4));
  const Dims global{8 + rng.next_below(24)};

  // Remember everything written for verification.
  std::map<std::tuple<int, StepId>, std::vector<double>> locals;
  for (int w = 0; w < writers; ++w) {
    auto writer = adios::BpWriter::create(dir, "prop", w, writers);
    ASSERT_TRUE(writer.is_ok());
    for (int s = 0; s < steps; ++s) {
      ASSERT_TRUE(writer.value()->begin_step(s).is_ok());
      // Global block.
      const Box box = adios::block_decompose(global, writers, w, 0);
      std::vector<double> gdata(box.elements());
      for (std::size_t i = 0; i < gdata.size(); ++i) {
        gdata[i] = w * 1000.0 + s * 100.0 + static_cast<double>(i);
      }
      ASSERT_TRUE(writer.value()
                      ->write(adios::global_array_var("g", DataType::kDouble,
                                                      global, box),
                              as_bytes_view(std::span<const double>(gdata)))
                      .is_ok());
      // Local array with per-(writer, step) size.
      std::vector<double> ldata(3 + rng.next_below(20));
      for (std::size_t i = 0; i < ldata.size(); ++i) {
        ldata[i] = rng.next_gaussian();
      }
      ASSERT_TRUE(
          writer.value()
              ->write(adios::local_array_var("l", DataType::kDouble,
                                             {ldata.size()}),
                      as_bytes_view(std::span<const double>(ldata)))
              .is_ok());
      locals[{w, s}] = std::move(ldata);
      ASSERT_TRUE(writer.value()->end_step().is_ok());
    }
    ASSERT_TRUE(writer.value()->close().is_ok());
  }

  auto reader = adios::BpReader::open(dir, "prop");
  ASSERT_TRUE(reader.is_ok());
  EXPECT_EQ(reader.value()->steps().size(), static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    // Global read over the full space.
    std::vector<double> out(adios::volume(global));
    ASSERT_TRUE(reader.value()
                    ->read_global(s, "g", Box{{0}, global},
                                  MutableByteView(std::as_writable_bytes(
                                      std::span<double>(out))))
                    .is_ok());
    for (int w = 0; w < writers; ++w) {
      const Box box = adios::block_decompose(global, writers, w, 0);
      for (std::uint64_t i = 0; i < box.count[0]; ++i) {
        ASSERT_DOUBLE_EQ(out[box.offset[0] + i],
                         w * 1000.0 + s * 100.0 + static_cast<double>(i));
      }
    }
    // Local blocks per writer.
    for (int w = 0; w < writers; ++w) {
      const auto refs = reader.value()->blocks_for_writer(s, w);
      const std::vector<double>& expect = locals[{w, s}];
      bool found = false;
      for (const auto& ref : refs) {
        if (ref.meta.name != "l") continue;
        found = true;
        std::vector<double> data(ref.payload_bytes / sizeof(double));
        ASSERT_TRUE(reader.value()
                        ->read_block(ref, MutableByteView(
                                              std::as_writable_bytes(
                                                  std::span<double>(data))))
                        .is_ok());
        ASSERT_EQ(data, expect);
      }
      ASSERT_TRUE(found);
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpPropertyTest, ::testing::Range(0, 12));

// ------------------------------------------------------- CoD corner cases --

StatusOr<double> eval(const std::string& source, const std::string& fn,
                      std::vector<double> args = {}) {
  auto ast = cod::parse(source);
  if (!ast.is_ok()) return ast.status();
  cod::Environment env;
  auto program = cod::compile(ast.value(), env);
  if (!program.is_ok()) return program.status();
  return cod::run(program.value(), fn, std::span<const double>(args), env);
}

TEST(CodCornerTest, ForWithoutInitOrCondition) {
  EXPECT_DOUBLE_EQ(
      eval("double f() { int i = 0; for (; i < 3;) i = i + 1; return i; }",
           "f")
          .value(),
      3);
  EXPECT_DOUBLE_EQ(
      eval("double f() { int s = 0; int i; for (i = 0; ; i = i + 1) { "
           "if (i >= 4) return s; s = s + i; } }",
           "f")
          .value(),
      6);
}

TEST(CodCornerTest, NestedCallsAndPrecedence) {
  const std::string src = R"(
    double add(double a, double b) { return a + b; }
    double f() { return add(1 + 2 * 3, add(4, 5)) * 2; }
  )";
  EXPECT_DOUBLE_EQ(eval(src, "f").value(), 32);  // (7 + 9) * 2
  EXPECT_DOUBLE_EQ(eval("double f() { return 2 < 3 == 1; }", "f").value(), 1);
  EXPECT_DOUBLE_EQ(eval("double f() { return -2 * -3; }", "f").value(), 6);
  EXPECT_DOUBLE_EQ(eval("double f() { return !0 + !1; }", "f").value(), 1);
}

TEST(CodCornerTest, DanglingElseBindsToNearest) {
  const std::string src = R"(
    double f(double x, double y) {
      if (x > 0)
        if (y > 0) return 1;
        else return 2;
      return 3;
    }
  )";
  EXPECT_DOUBLE_EQ(eval(src, "f", {1, 1}).value(), 1);
  EXPECT_DOUBLE_EQ(eval(src, "f", {1, -1}).value(), 2);
  EXPECT_DOUBLE_EQ(eval(src, "f", {-1, 1}).value(), 3);
}

TEST(CodCornerTest, VoidFunctionReturnsZeroValue) {
  // Calling a void function in expression position yields 0.0 (documented
  // CoD-mini semantics; C would reject it, the subset tolerates it).
  const std::string src = R"(
    void noop() {}
    double f() { return noop() + 5; }
  )";
  EXPECT_DOUBLE_EQ(eval(src, "f").value(), 5);
}

TEST(CodCornerTest, ScientificLiterals) {
  EXPECT_DOUBLE_EQ(eval("double f() { return 1.5e3 + 2E-2; }", "f").value(),
                   1500.02);
  EXPECT_DOUBLE_EQ(eval("double f() { return .5 * 4; }", "f").value(), 2);
}

TEST(CodCornerTest, EnvironmentMismatchDetected) {
  // Compile against one environment shape, run against another: the VM's
  // cross-check must catch it rather than read the wrong array.
  auto ast = cod::parse("double f() { return input[0]; }");
  ASSERT_TRUE(ast.is_ok());
  std::vector<double> data{42};
  cod::Environment compile_env;
  compile_env.add_array("input", std::span<const double>(data));
  auto program = cod::compile(ast.value(), compile_env);
  ASSERT_TRUE(program.is_ok());
  cod::Environment other_env;
  other_env.add_array("different", std::span<const double>(data));
  auto result = cod::run(program.value(), "f", {}, other_env);
  EXPECT_FALSE(result.is_ok());
}

TEST(CodCornerTest, PluginKeepsDeterministicOutput) {
  auto plugin = cod::compile_plugin(R"(
    void transform() {
      int i;
      for (i = 0; i < n; i = i + 1) {
        emit(max(min(input[i], 1.0), 0.0));
      }
    })");
  ASSERT_TRUE(plugin.is_ok());
  wire::DataPiece piece;
  piece.meta = adios::local_array_var("x", DataType::kDouble, {4});
  piece.region = piece.meta.block;
  const double vals[4] = {-1.0, 0.25, 0.75, 9.0};
  piece.payload.resize(sizeof vals);
  std::memcpy(piece.payload.data(), vals, sizeof vals);
  auto a = plugin.value()(piece);
  auto b = plugin.value()(piece);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().payload, b.value().payload);
  const auto* out = reinterpret_cast<const double*>(a.value().payload.data());
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 1.0);
}

// ------------------------------------------------- flow network extras --

TEST(FlowExtraTest, StaggeredArrivalsConserveWork) {
  // Flows arriving at different times still finish no earlier than the
  // work-conservation bound and no later than fully serialized service.
  sim::EventEngine eng;
  sim::FlowNetwork net(&eng);
  const auto link = net.add_link(100.0, "l");
  double last = 0;
  double total = 0;
  for (int i = 0; i < 5; ++i) {
    const double bytes = 200.0 + i * 50;
    total += bytes;
    eng.schedule_at(i * 1.0, [&net, link, bytes, &last] {
      net.start_flow({link}, bytes, [&last](sim::SimTime t) {
        last = std::max(last, t);
      });
    });
  }
  eng.run();
  EXPECT_GE(last, total / 100.0);       // cannot beat capacity
  EXPECT_LE(last, 4.0 + total / 100.0); // cannot exceed arrival + serial
}

TEST(FlowExtraTest, ManyToManyAllComplete) {
  sim::EventEngine eng;
  sim::FlowNetwork net(&eng);
  std::vector<sim::LinkId> tx, rx;
  for (int i = 0; i < 6; ++i) tx.push_back(net.add_link(50, "tx"));
  for (int i = 0; i < 3; ++i) rx.push_back(net.add_link(50, "rx"));
  int done = 0;
  for (int s = 0; s < 6; ++s) {
    for (int r = 0; r < 3; ++r) {
      net.start_flow({tx[static_cast<std::size_t>(s)],
                      rx[static_cast<std::size_t>(r)]},
                     25.0, [&done](sim::SimTime) { ++done; });
    }
  }
  eng.run();
  EXPECT_EQ(done, 18);
  EXPECT_EQ(net.active_flows(), 0u);
}

// ------------------------------------------------------- xml extras --

TEST(XmlExtraTest, DeeplyNestedAndMixedContent) {
  auto doc = xml::parse(R"(
    <a><b><c><d attr="x">leaf text</d></c></b>
       <b2>sibling</b2></a>)");
  ASSERT_TRUE(doc.is_ok());
  const auto* d = doc.value().root().child("b")->child("c")->child("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->text, "leaf text");
  EXPECT_EQ(d->attr("attr"), "x");
  EXPECT_EQ(doc.value().root().child("b2")->text, "sibling");
}

TEST(XmlExtraTest, WhitespaceTolerance) {
  auto doc = xml::parse("  \n\t <root   a = \"1\"   >  text  </root>  \n");
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().root().attr("a"), "1");
  EXPECT_EQ(doc.value().root().text, "text");
}

TEST(XmlExtraTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/roundtrip.xml";
  {
    std::ofstream out(path);
    out << "<adios-config><adios-group name=\"g\"/></adios-config>";
  }
  auto doc = xml::parse_file(path);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().root().name, "adios-config");
  EXPECT_FALSE(xml::parse_file("/nonexistent/nope.xml").is_ok());
}

// ---------------------------------------------- plug-in placement advice --

TEST(AdvisorTest, HeavyReductionFavorsWriterSide) {
  // A range query keeping 20% of 110 MB over an IB link saves far more
  // movement than its execution costs: run it inside the simulation.
  PluginPlacementInputs in;
  in.bytes_per_step = 110e6;
  in.reduction_ratio = 0.2;
  in.plugin_seconds_per_step = 0.01;
  in.movement_bandwidth = 1.5e9;
  in.writer_headroom_seconds = 0;
  const auto advice = advise_plugin_placement(in);
  EXPECT_TRUE(advice.run_at_writer);
  EXPECT_NEAR(advice.movement_seconds_saved, 0.8 * 110e6 / 1.5e9, 1e-9);
}

TEST(AdvisorTest, ExpensiveMarkupStaysAtReader) {
  // A markup plug-in that barely shrinks the data but costs real compute
  // must not be charged to the simulation.
  PluginPlacementInputs in;
  in.bytes_per_step = 1.7e6;
  in.reduction_ratio = 0.95;
  in.plugin_seconds_per_step = 0.5;
  in.movement_bandwidth = 5e9;
  const auto advice = advise_plugin_placement(in);
  EXPECT_FALSE(advice.run_at_writer);
}

TEST(AdvisorTest, WriterHeadroomAbsorbsCost) {
  PluginPlacementInputs in;
  in.bytes_per_step = 10e6;
  in.reduction_ratio = 0.5;
  in.plugin_seconds_per_step = 0.05;
  in.movement_bandwidth = 5e9;
  in.writer_headroom_seconds = 0;   // no slack: 1ms saved < 50ms cost
  EXPECT_FALSE(advise_plugin_placement(in).run_at_writer);
  in.writer_headroom_seconds = 0.1; // slack absorbs the plug-in entirely
  EXPECT_TRUE(advise_plugin_placement(in).run_at_writer);
}

TEST(AdvisorTest, InputsFromShippedReport) {
  wire::MonitorReport report;
  report.steps = 10;
  report.send_seconds = 0.5;  // 50 ms visible send per step
  const auto in = inputs_from_reports(report, 110e6, 0.2, 0.02, 1.5e9);
  EXPECT_NEAR(in.writer_headroom_seconds, 0.05, 1e-12);
  EXPECT_TRUE(advise_plugin_placement(in).run_at_writer);
}

// ------------------------------------------------- monitoring trace dump --

TEST(MonitorTraceTest, CsvIsParseable) {
  PerfMonitor monitor;
  monitor.record_time("io.write", 0.25);
  monitor.record_time("io.write", 0.75);
  monitor.add_count("bytes", 4096);
  const std::string path = ::testing::TempDir() + "/trace.csv";
  ASSERT_TRUE(monitor.dump_csv(path).is_ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  int rows = 0;
  bool saw_time = false, saw_count = false;
  while (std::getline(in, line)) {
    ++rows;
    if (line.find("io.write,time,2,") == 0) saw_time = true;
    if (line.find("bytes,count,4096") == 0) saw_count = true;
  }
  EXPECT_EQ(rows, 2);
  EXPECT_TRUE(saw_time);
  EXPECT_TRUE(saw_count);
}

}  // namespace
}  // namespace flexio
