// Ablation: receiver-directed Get scheduling vs. greedy Gets.
//
// Section II.E: for large messages FlexIO uses receiver-directed RDMA Get,
// and "the receiver ... issues RDMA Get to fetch data according to some
// scheduling policy". On the flow simulator the receiver NIC is the
// bottleneck either way, so the total drain time is fixed -- what the
// scheduler controls is *how long each transfer stays in flight*: greedy
// Gets run all 16 transfers concurrently for the whole drain, pinning all
// 16 senders' registered buffers (and a share of every sender NIC) for
// ~0.7 s; bounding the in-flight count finishes transfers ~2x sooner on
// average and caps pinned-buffer occupancy at k buffers, which is exactly
// what the registration cache's memory threshold needs (Section II.E).
#include <cstdio>
#include <vector>

#include "bench/report.h"
#include "sim/engine.h"
#include "sim/flow_network.h"
#include "sim/machine.h"

namespace {

using namespace flexio;
using namespace flexio::sim;

struct Outcome {
  double drain_seconds = 0;       // when the last bulk Get finished
  double mean_transfer_end = 0;   // mean completion time of a bulk Get
  int peak_pinned_buffers = 0;    // sender buffers registered at once
};

/// `max_inflight` <= 0 means greedy (all Gets issued immediately).
Outcome run(int sim_nodes, double bulk_bytes, int max_inflight) {
  const MachineDesc machine = titan();
  EventEngine engine;
  FlowNetwork net(&engine);
  std::vector<LinkId> nic;
  for (int n = 0; n < sim_nodes; ++n) {
    nic.push_back(net.add_link(machine.nic_bw, "nic"));
  }
  const LinkId staging_rx = net.add_link(machine.nic_bw, "staging");

  Outcome out;
  // Bulk Gets: the staging node pulls each sim node's output. The
  // scheduler bounds concurrency; completion of one Get launches the next.
  int next = 0;
  int inflight = 0;
  double total_end = 0;
  std::function<void(SimTime)> on_get_done = [&](SimTime t) {
    out.drain_seconds = std::max(out.drain_seconds, t);
    total_end += t;
    --inflight;
    if (next < sim_nodes) {
      const int n = next++;
      ++inflight;
      out.peak_pinned_buffers = std::max(out.peak_pinned_buffers, inflight);
      net.start_flow({nic[static_cast<std::size_t>(n)], staging_rx},
                     bulk_bytes, on_get_done);
    }
  };
  const int initial = max_inflight <= 0
                          ? sim_nodes
                          : std::min(max_inflight, sim_nodes);
  for (int i = 0; i < initial; ++i) {
    const int n = next++;
    ++inflight;
    out.peak_pinned_buffers = std::max(out.peak_pinned_buffers, inflight);
    net.start_flow({nic[static_cast<std::size_t>(n)], staging_rx}, bulk_bytes,
                   on_get_done);
  }
  engine.run();
  out.mean_transfer_end = total_end / sim_nodes;
  return out;
}

}  // namespace

int main() {
  using namespace flexio;
  const int sim_nodes = 16;
  const double bulk = 220e6;  // one Titan node's GTS output per interval
  std::printf("Get scheduling ablation: %d sim nodes -> 1 staging node "
              "(Titan NICs), bulk %.0f MB each\n\n",
              sim_nodes, bulk / 1e6);
  std::printf("%-23s %14s %18s %14s\n", "policy", "drain (s)",
              "mean transfer (s)", "pinned buffers");
  bench::Report report("ablation_get_scheduling");
  const Outcome greedy = run(sim_nodes, bulk, 0);
  std::printf("%-23s %14.3f %18.3f %14d\n", "greedy (all at once)",
              greedy.drain_seconds, greedy.mean_transfer_end,
              greedy.peak_pinned_buffers);
  report.add_samples("greedy/mean_transfer", "s", 0, 1,
                     {greedy.mean_transfer_end});
  report.add_counter("greedy/pinned_buffers",
                     static_cast<std::uint64_t>(greedy.peak_pinned_buffers));
  for (int k : {8, 4, 2, 1}) {
    const Outcome sched = run(sim_nodes, bulk, k);
    std::printf("scheduled (inflight=%d)  %14.3f %18.3f %14d\n", k,
                sched.drain_seconds, sched.mean_transfer_end,
                sched.peak_pinned_buffers);
    const std::string prefix = "inflight" + std::to_string(k);
    report.add_samples(prefix + "/mean_transfer", "s", 0, 1,
                       {sched.mean_transfer_end});
    report.add_counter(prefix + "/pinned_buffers",
                       static_cast<std::uint64_t>(sched.peak_pinned_buffers));
  }
  std::printf("\nthe drain is receiver-bound either way; scheduling halves "
              "mean transfer latency\nand caps how many registered sender "
              "buffers are pinned concurrently\n");
  return report.write().is_ok() ? 0 : 1;
}
