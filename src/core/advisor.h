// Runtime management: monitoring-driven placement of DC plug-ins.
//
// Section II.G: "monitoring data captured from the simulation side can be
// gathered online and transferred to the analytics side. The analytics
// process(es) can then use it to dynamically schedule data movement and
// decide the placement of DC Plug-ins." This advisor is that decision:
// given what monitoring observed about a plug-in (its execution cost and
// how much it shrinks the data) and about the pipeline (movement bandwidth,
// simulation slack), pick the side that minimizes simulation-visible cost.
// Pair it with StreamReader::migrate_plugin to act on the decision.
#pragma once

#include "core/wire.h"

namespace flexio {

struct PluginPlacementInputs {
  /// Volume of the conditioned variable per step, before the plug-in.
  double bytes_per_step = 0;
  /// Plug-in output/input size ratio (selection/sampling < 1, markup ~ 1).
  double reduction_ratio = 1.0;
  /// Measured plug-in execution time per step (monitor metric
  /// "plugin.exec" on whichever side currently runs it).
  double plugin_seconds_per_step = 0;
  /// Transport bandwidth between the programs (bytes/s).
  double movement_bandwidth = 1e9;
  /// Simulation slack per step: time the writer can absorb without
  /// stretching the pipeline (0 = the simulation is the critical path).
  double writer_headroom_seconds = 0;
};

struct PluginPlacementAdvice {
  bool run_at_writer = false;
  double movement_seconds_saved = 0;  // by conditioning before the move
  double writer_seconds_cost = 0;     // simulation time the plug-in charges
};

/// Writer-side execution saves (1 - reduction) x bytes / bandwidth of
/// movement but charges the simulation whatever plug-in time its headroom
/// cannot absorb; run at the writer iff the saving wins.
inline PluginPlacementAdvice advise_plugin_placement(
    const PluginPlacementInputs& in) {
  PluginPlacementAdvice advice;
  advice.movement_seconds_saved =
      (1.0 - in.reduction_ratio) * in.bytes_per_step / in.movement_bandwidth;
  advice.writer_seconds_cost =
      std::max(0.0, in.plugin_seconds_per_step - in.writer_headroom_seconds);
  advice.run_at_writer =
      advice.movement_seconds_saved > advice.writer_seconds_cost;
  return advice;
}

/// Convenience: derive the inputs from a shipped writer-side monitoring
/// report plus reader-side observations of one variable.
PluginPlacementInputs inputs_from_reports(const wire::MonitorReport& writer,
                                          double var_bytes_per_step,
                                          double reduction_ratio,
                                          double plugin_seconds_per_step,
                                          double movement_bandwidth);

}  // namespace flexio
