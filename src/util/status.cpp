#include "util/status.h"

namespace flexio {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kEndOfStream: return "end_of_stream";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnimplemented: return "unimplemented";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status make_error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

}  // namespace flexio
