#include "cod/plugin.h"

#include <cmath>
#include <cstring>
#include <memory>

#include "cod/parser.h"

namespace flexio::cod {

namespace {

using serial::DataType;

bool supported_type(DataType t) {
  switch (t) {
    case DataType::kDouble:
    case DataType::kFloat:
    case DataType::kInt32:
    case DataType::kInt64:
      return true;
    default:
      return false;
  }
}

StatusOr<std::vector<double>> payload_to_doubles(const wire::DataPiece& piece) {
  const std::size_t elem = serial::size_of(piece.meta.type);
  const std::size_t n = piece.payload.size() / elem;
  std::vector<double> out(n);
  const std::byte* p = piece.payload.data();
  switch (piece.meta.type) {
    case DataType::kDouble:
      std::memcpy(out.data(), p, n * sizeof(double));
      break;
    case DataType::kFloat:
      for (std::size_t i = 0; i < n; ++i) {
        float v;
        std::memcpy(&v, p + i * 4, 4);
        out[i] = static_cast<double>(v);
      }
      break;
    case DataType::kInt32:
      for (std::size_t i = 0; i < n; ++i) {
        std::int32_t v;
        std::memcpy(&v, p + i * 4, 4);
        out[i] = static_cast<double>(v);
      }
      break;
    case DataType::kInt64:
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t v;
        std::memcpy(&v, p + i * 8, 8);
        out[i] = static_cast<double>(v);
      }
      break;
    default:
      return make_error(ErrorCode::kUnimplemented,
                        "plug-ins support double/float/int32/int64 payloads");
  }
  return out;
}

std::vector<std::byte> doubles_to_payload(const std::vector<double>& values,
                                          DataType type) {
  const std::size_t elem = serial::size_of(type);
  std::vector<std::byte> out(values.size() * elem);
  std::byte* p = out.data();
  switch (type) {
    case DataType::kDouble:
      std::memcpy(p, values.data(), out.size());
      break;
    case DataType::kFloat:
      for (std::size_t i = 0; i < values.size(); ++i) {
        const auto v = static_cast<float>(values[i]);
        std::memcpy(p + i * 4, &v, 4);
      }
      break;
    case DataType::kInt32:
      for (std::size_t i = 0; i < values.size(); ++i) {
        const auto v = static_cast<std::int32_t>(values[i]);
        std::memcpy(p + i * 4, &v, 4);
      }
      break;
    case DataType::kInt64:
      for (std::size_t i = 0; i < values.size(); ++i) {
        const auto v = static_cast<std::int64_t>(values[i]);
        std::memcpy(p + i * 8, &v, 8);
      }
      break;
    default:
      FLEXIO_CHECK(false);
  }
  return out;
}

/// Build the per-execution environment. `emitted`/`used_emit` are owned by
/// the caller; `input` must outlive the run.
void build_env(Environment* env, std::span<const double> input,
               std::uint64_t rows, std::uint64_t cols,
               std::vector<double>* emitted, bool* used_emit) {
  env->add_global("n", static_cast<double>(input.size()));
  env->add_global("rows", static_cast<double>(rows));
  env->add_global("cols", static_cast<double>(cols));
  env->add_array("input", input);
  env->add_builtin("emit", 1,
                   [emitted, used_emit](std::span<const double> args) {
                     *used_emit = true;
                     emitted->push_back(args[0]);
                     return StatusOr<double>(0.0);
                   });
  env->add_builtin(
      "keep_row", 1,
      [emitted, used_emit, input, cols](std::span<const double> args)
          -> StatusOr<double> {
        *used_emit = true;
        const auto row = static_cast<std::int64_t>(args[0]);
        if (row < 0 ||
            static_cast<std::uint64_t>(row) * cols + cols > input.size()) {
          return make_error(ErrorCode::kOutOfRange,
                            "keep_row out of bounds");
        }
        const auto base = static_cast<std::size_t>(row) * cols;
        for (std::uint64_t c = 0; c < cols; ++c) {
          emitted->push_back(input[base + c]);
        }
        return 0.0;
      });
  env->add_builtin("sqrt", 1, [](std::span<const double> a) {
    return StatusOr<double>(std::sqrt(a[0]));
  });
  env->add_builtin("fabs", 1, [](std::span<const double> a) {
    return StatusOr<double>(std::fabs(a[0]));
  });
  env->add_builtin("pow", 2, [](std::span<const double> a) {
    return StatusOr<double>(std::pow(a[0], a[1]));
  });
  env->add_builtin("floor", 1, [](std::span<const double> a) {
    return StatusOr<double>(std::floor(a[0]));
  });
  env->add_builtin("min", 2, [](std::span<const double> a) {
    return StatusOr<double>(std::min(a[0], a[1]));
  });
  env->add_builtin("max", 2, [](std::span<const double> a) {
    return StatusOr<double>(std::max(a[0], a[1]));
  });
  env->add_builtin("exp", 1, [](std::span<const double> a) {
    return StatusOr<double>(std::exp(a[0]));
  });
  env->add_builtin("log", 1, [](std::span<const double> a) -> StatusOr<double> {
    if (a[0] <= 0) {
      return make_error(ErrorCode::kInvalidArgument, "log of non-positive");
    }
    return std::log(a[0]);
  });
  env->add_builtin("sin", 1, [](std::span<const double> a) {
    return StatusOr<double>(std::sin(a[0]));
  });
  env->add_builtin("cos", 1, [](std::span<const double> a) {
    return StatusOr<double>(std::cos(a[0]));
  });
}

/// Shape of the piece as (rows, cols): 2-D blocks expose their natural
/// shape; everything else is a flat row-major vector with cols == 1.
void piece_shape(const wire::DataPiece& piece, std::uint64_t n,
                 std::uint64_t* rows, std::uint64_t* cols) {
  const adios::Box& box = piece.meta.shape == adios::ShapeKind::kLocalArray
                              ? piece.meta.block
                              : piece.region;
  if (box.ndim() == 2) {
    *rows = box.count[0];
    *cols = box.count[1];
  } else {
    *rows = n;
    *cols = 1;
  }
}

}  // namespace

StatusOr<PluginFn> compile_plugin(const std::string& source,
                                  const VmLimits& limits) {
  auto ast = parse(source);
  if (!ast.is_ok()) return ast.status();
  if (ast.value().find("transform") == nullptr) {
    return make_error(ErrorCode::kInvalidArgument,
                      "plug-in must define void transform()");
  }
  // Compile against a prototype environment with the canonical shape; the
  // values are rebound per execution.
  Environment proto;
  std::vector<double> proto_emitted;
  bool proto_used = false;
  build_env(&proto, {}, 0, 1, &proto_emitted, &proto_used);
  auto compiled = compile(ast.value(), proto);
  if (!compiled.is_ok()) return compiled.status();

  auto program = std::make_shared<CompiledProgram>(std::move(compiled).value());
  return PluginFn([program, limits](const wire::DataPiece& piece)
                      -> StatusOr<wire::DataPiece> {
    if (!supported_type(piece.meta.type)) {
      return make_error(ErrorCode::kUnimplemented,
                        "unsupported payload type for plug-in");
    }
    auto input = payload_to_doubles(piece);
    if (!input.is_ok()) return input.status();
    std::uint64_t rows = 0, cols = 1;
    piece_shape(piece, input.value().size(), &rows, &cols);

    std::vector<double> emitted;
    bool used_emit = false;
    Environment env;
    build_env(&env, std::span<const double>(input.value()), rows, cols,
              &emitted, &used_emit);
    auto result = run(*program, "transform", {}, env, limits);
    if (!result.is_ok()) return result.status();

    if (!used_emit) return piece;  // annotation-only plug-in: pass through

    wire::DataPiece out = piece;
    if (piece.meta.shape == adios::ShapeKind::kLocalArray) {
      if (cols > 1 && emitted.size() % cols != 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "plug-in emitted a partial row");
      }
      out.meta.block.count[0] = cols > 0 ? emitted.size() / cols : 0;
      out.region = out.meta.block;
    } else if (emitted.size() != input.value().size()) {
      return make_error(
          ErrorCode::kInvalidArgument,
          "plug-ins on global arrays must preserve the element count");
    }
    out.payload = doubles_to_payload(emitted, piece.meta.type);
    return out;
  });
}

PluginCompiler make_plugin_compiler(const VmLimits& limits) {
  return [limits](const std::string& source) {
    return compile_plugin(source, limits);
  };
}

}  // namespace flexio::cod
