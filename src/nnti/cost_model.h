// Timing model for RDMA transfers on the simulated interconnects.
//
// Drives the Figure 4 reproduction (point-to-point RDMA Get bandwidth with
// dynamic vs. static buffer allocation+registration on the Cray XK6) and
// the data-movement costs inside the coupled-pipeline simulations. A
// transfer costs one NIC latency plus serialization at the NIC bandwidth;
// dynamically-registered transfers additionally pay a fixed setup (page
// table walks, NIC doorbells) plus a per-byte pinning cost.
#pragma once

#include <cstddef>

#include "sim/machine.h"

namespace flexio::nnti {

class RdmaCostModel {
 public:
  explicit RdmaCostModel(const sim::MachineDesc& machine)
      : bw_(machine.nic_bw),
        latency_(machine.nic_latency),
        reg_base_(machine.rdma_reg_base),
        reg_per_byte_(machine.rdma_reg_per_byte) {}

  /// Seconds for a point-to-point transfer of `bytes`.
  double transfer_time(std::size_t bytes, bool dynamic_registration) const {
    double t = latency_ + static_cast<double>(bytes) / bw_;
    if (dynamic_registration) {
      t += reg_base_ + static_cast<double>(bytes) * reg_per_byte_;
    }
    return t;
  }

  /// Achieved bandwidth (bytes/s) for the Figure 4 sweep.
  double bandwidth(std::size_t bytes, bool dynamic_registration) const {
    return static_cast<double>(bytes) /
           transfer_time(bytes, dynamic_registration);
  }

  /// Peak link bandwidth (the asymptote of the static curve).
  double peak_bandwidth() const { return bw_; }

 private:
  double bw_;
  double latency_;
  double reg_base_;
  double reg_per_byte_;
};

}  // namespace flexio::nnti
