#include "harness/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "util/strings.h"

namespace flexio::torture {
namespace {

// Stateless 64-bit mix for random-layer decisions. Depends only on the
// (seed, op, pair, occurrence, lane) coordinates so the draw is identical
// no matter how threads interleave.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_str(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Uniform [0,1) draw for a fault decision "lane" (fail/drop/delay/dup each
// get their own lane so probabilities are independent).
double draw(std::uint64_t seed, nnti::Op op, std::string_view local,
            std::string_view peer, std::uint64_t n, int lane) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  h = hash_str(h, nnti::op_name(op));
  h = hash_str(h, local);
  h = hash_str(h, peer);
  h ^= n * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(lane) << 56;
  return static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
}

constexpr int kLaneFail = 0;
constexpr int kLaneDrop = 1;
constexpr int kLaneDelay = 2;
constexpr int kLaneDup = 3;

StatusOr<nnti::Op> parse_op(std::string_view token) {
  if (token == "connect") return nnti::Op::kConnect;
  if (token == "register") return nnti::Op::kRegister;
  if (token == "putmsg") return nnti::Op::kPutMessage;
  if (token == "get") return nnti::Op::kGet;
  if (token == "put") return nnti::Op::kPut;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown fault op '" + std::string(token) + "'");
}

StatusOr<ErrorCode> parse_code(std::string_view token) {
  if (token == "unavailable") return ErrorCode::kUnavailable;
  if (token == "timeout") return ErrorCode::kTimeout;
  if (token == "resource_exhausted") return ErrorCode::kResourceExhausted;
  if (token == "internal") return ErrorCode::kInternal;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown error code '" + std::string(token) + "'");
}

std::string code_token(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    default: return "internal";
  }
}

bool random_fails_op(const RandomProfile& profile, nnti::Op op) {
  return std::find(profile.fail_ops.begin(), profile.fail_ops.end(), op) !=
         profile.fail_ops.end();
}

// Random drops are confined to ops where a drop surfaces as a retryable
// kTimeout (get/put). Dropping a putmsg is silent loss -- fire-and-forget
// success with no delivery -- which no retry can recover; that failure mode
// is for *scripted* drop rules that tests pair with explicit timeout
// assertions.
bool random_drops_op(const RandomProfile& profile, nnti::Op op) {
  return (op == nnti::Op::kGet || op == nnti::Op::kPut) &&
         random_fails_op(profile, op);
}

StatusOr<StepPoint> parse_point(std::string_view token) {
  if (token == "begin") return StepPoint::kBegin;
  if (token == "pre_reads") return StepPoint::kPreReads;
  if (token == "post_reads") return StepPoint::kPostReads;
  if (token == "end") return StepPoint::kEnd;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown step point '" + std::string(token) +
                        "' (want begin|pre_reads|post_reads|end)");
}

// Parse one rank-action line; tokens[0] already identified the RankOp.
StatusOr<RankAction> parse_rank_action(RankOp op,
                                       const std::vector<std::string_view>&
                                           tokens) {
  RankAction action;
  action.op = op;
  bool have_rank = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string_view::npos) {
      return make_error(ErrorCode::kInvalidArgument,
                        "fault script: expected key=value, got '" +
                            std::string(tokens[i]) + "'");
    }
    const std::string_view key = tokens[i].substr(0, eq);
    const std::string_view value = tokens[i].substr(eq + 1);
    long long n = 0;
    if (key == "rank") {
      if (!parse_int(value, &n) || n < 1) {
        return make_error(ErrorCode::kInvalidArgument,
                          "fault script: rank must be an integer >= 1 "
                          "(the coordinator cannot be a victim)");
      }
      action.rank = static_cast<int>(n);
      have_rank = true;
    } else if (key == "step") {
      if (!parse_int(value, &n) || n < 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "fault script: step must be an integer >= 0");
      }
      action.step = static_cast<int>(n);
    } else if (key == "point") {
      auto point_or = parse_point(value);
      if (!point_or.is_ok()) return point_or.status();
      action.point = point_or.value();
    } else if (key == "delay_ms") {
      if (op != RankOp::kDelayHeartbeat) {
        return make_error(ErrorCode::kInvalidArgument,
                          "fault script: delay_ms only applies to delay_hb");
      }
      if (!parse_int(value, &n) || n < 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "fault script: delay_ms must be an integer >= 0");
      }
      action.delay = std::chrono::milliseconds(n);
    } else {
      return make_error(ErrorCode::kInvalidArgument,
                        "fault script: unknown key '" + std::string(key) +
                            "' for rank action");
    }
  }
  if (!have_rank) {
    return make_error(ErrorCode::kInvalidArgument,
                      "fault script: rank action needs rank=<N>");
  }
  if (op == RankOp::kLeave && action.point != StepPoint::kBegin &&
      action.point != StepPoint::kEnd) {
    return make_error(ErrorCode::kInvalidArgument,
                      "fault script: leave fires only at step boundaries "
                      "(point=begin|end)");
  }
  if (op == RankOp::kRespawn) action.point = StepPoint::kBegin;
  return action;
}

}  // namespace

std::string_view rank_op_name(RankOp op) {
  switch (op) {
    case RankOp::kKill: return "kill";
    case RankOp::kLeave: return "leave";
    case RankOp::kRespawn: return "respawn";
    case RankOp::kDelayHeartbeat: return "delay_hb";
  }
  return "?";
}

std::string_view step_point_name(StepPoint point) {
  switch (point) {
    case StepPoint::kBegin: return "begin";
    case StepPoint::kPreReads: return "pre_reads";
    case StepPoint::kPostReads: return "post_reads";
    case StepPoint::kEnd: return "end";
  }
  return "?";
}

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail: return "fail";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "dup";
  }
  return "?";
}

std::string normalize_nic_name(const std::string& name) {
  // "sim|x.0>viz|x.0#17:tx" -> "sim|x.0>viz|x.0:tx"
  const std::size_t hash = name.rfind('#');
  if (hash == std::string::npos) return name;
  std::size_t end = hash + 1;
  while (end < name.size() && std::isdigit(static_cast<unsigned char>(name[end]))) {
    ++end;
  }
  if (end == hash + 1) return name;  // '#' with no digits: leave alone
  return name.substr(0, hash) + name.substr(end);
}

bool glob_match(std::string_view pattern, std::string_view text) {
  if (pattern.empty() || pattern == "*") return true;
  // Iterative glob with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

StatusOr<FaultPlan> FaultPlan::parse(std::string_view script) {
  FaultPlan plan;
  std::size_t line_no = 0;
  for (std::string_view raw : split(script, '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = trim(line.substr(0, comment));
    if (line.empty()) continue;

    std::vector<std::string_view> tokens;
    for (std::string_view tok : split(line, ' ')) {
      tok = trim(tok);
      if (!tok.empty()) tokens.push_back(tok);
    }
    if (tokens.size() < 2) {
      return make_error(ErrorCode::kInvalidArgument,
                        str_format("fault script line %zu: want '<action> <op> "
                                   "[key=value...]', got '%.*s'",
                                   line_no, static_cast<int>(line.size()),
                                   line.data()));
    }

    // Rank-level membership actions share the script with fabric rules.
    std::optional<RankOp> rank_op;
    if (tokens[0] == "kill") rank_op = RankOp::kKill;
    else if (tokens[0] == "leave") rank_op = RankOp::kLeave;
    else if (tokens[0] == "respawn") rank_op = RankOp::kRespawn;
    else if (tokens[0] == "delay_hb") rank_op = RankOp::kDelayHeartbeat;
    if (rank_op) {
      auto action_or = parse_rank_action(*rank_op, tokens);
      if (!action_or.is_ok()) {
        return make_error(action_or.status().code(),
                          str_format("fault script line %zu: %s", line_no,
                                     action_or.status().message().c_str()));
      }
      plan.add(action_or.value());
      continue;
    }

    FaultRule rule;
    if (tokens[0] == "fail") {
      rule.kind = FaultKind::kFail;
    } else if (tokens[0] == "drop") {
      rule.kind = FaultKind::kDrop;
    } else if (tokens[0] == "delay") {
      rule.kind = FaultKind::kDelay;
      rule.delay = std::chrono::microseconds(100);
    } else if (tokens[0] == "dup") {
      rule.kind = FaultKind::kDuplicate;
    } else {
      return make_error(ErrorCode::kInvalidArgument,
                        "unknown fault action '" + std::string(tokens[0]) +
                            "' (want fail|drop|delay|dup)");
    }
    auto op_or = parse_op(tokens[1]);
    if (!op_or.is_ok()) return op_or.status();
    rule.op = op_or.value();

    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos) {
        return make_error(ErrorCode::kInvalidArgument,
                          "fault script: expected key=value, got '" +
                              std::string(tokens[i]) + "'");
      }
      const std::string_view key = tokens[i].substr(0, eq);
      const std::string_view value = tokens[i].substr(eq + 1);
      if (key == "nth") {
        long long n = 0;
        if (!parse_int(value, &n) || n < 1) {
          return make_error(ErrorCode::kInvalidArgument,
                            "fault script: nth must be an integer >= 1");
        }
        rule.nth = static_cast<std::uint64_t>(n);
      } else if (key == "times") {
        long long n = 0;
        if (!parse_int(value, &n) || n < 1) {
          return make_error(ErrorCode::kInvalidArgument,
                            "fault script: times must be an integer >= 1");
        }
        rule.times = static_cast<std::uint64_t>(n);
      } else if (key == "from") {
        rule.local = std::string(value);
      } else if (key == "to") {
        rule.peer = std::string(value);
      } else if (key == "code") {
        auto code_or = parse_code(value);
        if (!code_or.is_ok()) return code_or.status();
        rule.code = code_or.value();
      } else if (key == "delay_us") {
        long long us = 0;
        if (!parse_int(value, &us) || us < 0) {
          return make_error(ErrorCode::kInvalidArgument,
                            "fault script: delay_us must be an integer >= 0");
        }
        rule.delay = std::chrono::microseconds(us);
      } else {
        return make_error(ErrorCode::kInvalidArgument,
                          "fault script: unknown key '" + std::string(key) +
                              "'");
      }
    }
    plan.add(rule);
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomProfile& profile) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.random_enabled_ = true;
  plan.profile_ = profile;
  return plan;
}

FaultPlan FaultPlan::random_membership(std::uint64_t seed, int readers,
                                       int steps, bool respawn) {
  FaultPlan plan;
  plan.seed_ = seed;
  // All coordinates derive from mix64 chains off the seed, so one seed
  // always replays the same kill (and respawn) no matter the host.
  const std::uint64_t h0 = mix64(seed ^ 0x6d656d6265727368ULL);  // "membersh"
  const std::uint64_t h1 = mix64(h0 + 1);
  const std::uint64_t h2 = mix64(h0 + 2);
  const std::uint64_t h3 = mix64(h0 + 3);

  RankAction kill;
  kill.op = RankOp::kKill;
  // Victim is any non-coordinator reader rank.
  kill.rank = readers > 1 ? 1 + static_cast<int>(h0 % (readers - 1)) : 1;
  // Kill somewhere in the interior so at least one step runs before and the
  // writer has at least one step left to notice and re-plan.
  const int last_kill = std::max(1, steps - 2);
  kill.step = 1 + static_cast<int>(h1 % last_kill);
  constexpr StepPoint kPoints[] = {StepPoint::kBegin, StepPoint::kPreReads,
                                   StepPoint::kPostReads, StepPoint::kEnd};
  kill.point = kPoints[h2 % 4];
  plan.add(kill);

  if (respawn && kill.step + 2 < steps) {
    RankAction back;
    back.op = RankOp::kRespawn;
    back.rank = kill.rank;
    // Rejoin at least one full step after the kill (so the death is
    // detected and planned around first) but no later than the last step,
    // where the writer's pre-step wait can still anchor the admission.
    const int span = steps - (kill.step + 2);
    back.step = kill.step + 2 + static_cast<int>(h3 % span);
    back.point = StepPoint::kBegin;
    plan.add(back);
  }
  return plan;
}

void FaultPlan::add(const FaultRule& rule) { rules_.push_back(rule); }

void FaultPlan::add(const RankAction& action) {
  rank_actions_.push_back(action);
}

void FaultPlan::note_rank_action(const RankAction& action,
                                 std::string_view what) const {
  std::string line;
  line += rank_op_name(action.op);
  line += str_format(" rank=%d step=%d point=", action.rank, action.step);
  line += step_point_name(action.point);
  if (!what.empty()) {
    line += ' ';
    line += what;
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->log.append(std::move(line));
}

std::string FaultPlan::script() const {
  std::string out;
  for (const FaultRule& rule : rules_) {
    out += fault_kind_name(rule.kind);
    out += ' ';
    out += nnti::op_name(rule.op);
    out += str_format(" nth=%llu", static_cast<unsigned long long>(rule.nth));
    if (rule.times != 1) {
      out += str_format(" times=%llu",
                        static_cast<unsigned long long>(rule.times));
    }
    if (!rule.local.empty() && rule.local != "*") out += " from=" + rule.local;
    if (!rule.peer.empty() && rule.peer != "*") out += " to=" + rule.peer;
    if (rule.kind == FaultKind::kFail) out += " code=" + code_token(rule.code);
    if (rule.kind == FaultKind::kDelay) {
      out += str_format(
          " delay_us=%lld",
          static_cast<long long>(
              std::chrono::duration_cast<std::chrono::microseconds>(rule.delay)
                  .count()));
    }
    out += '\n';
  }
  for (const RankAction& action : rank_actions_) {
    out += rank_op_name(action.op);
    out += str_format(" rank=%d step=%d", action.rank, action.step);
    if (action.op != RankOp::kRespawn) {
      out += " point=";
      out += step_point_name(action.point);
    }
    if (action.op == RankOp::kDelayHeartbeat) {
      out += str_format(
          " delay_ms=%lld",
          static_cast<long long>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  action.delay)
                  .count()));
    }
    out += '\n';
  }
  return out;
}

std::string FaultPlan::banner() const {
  std::ostringstream out;
  out << "=== fault plan ===\n";
  if (random_enabled_) {
    out << "seed=" << seed_ << " fail_prob=" << profile_.fail_prob
        << " drop_prob=" << profile_.drop_prob
        << " delay_prob=" << profile_.delay_prob
        << " dup_prob=" << profile_.dup_prob
        << " delay_us=" << profile_.delay_us
        << " max_consecutive_fails=" << profile_.max_consecutive_fails << "\n";
  } else if (seed_ != 0) {
    out << "seed=" << seed_ << " (membership derivation)\n";
  }
  const std::string rules = script();
  if (!rules.empty()) out << rules;
  if (!random_enabled_ && rules.empty()) out << "(empty)\n";
  out << "==================";
  return out.str();
}

nnti::FaultHook FaultPlan::hook() const {
  // The lambda captures by value; shared state keeps counters/log alive and
  // common to every copy of the hook.
  auto state = state_;
  auto rules = rules_;
  const bool random_on = random_enabled_;
  const std::uint64_t seed = seed_;
  const RandomProfile profile = profile_;
  return [state, rules, random_on, seed, profile](
             nnti::Op op, const std::string& raw_local,
             const std::string& raw_peer) -> nnti::FaultAction {
    const std::string local = normalize_nic_name(raw_local);
    const std::string peer = normalize_nic_name(raw_peer);

    std::uint64_t n = 0;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      std::string key;
      key.reserve(local.size() + peer.size() + 12);
      key += nnti::op_name(op);
      key += '|';
      key += local;
      key += '|';
      key += peer;
      n = ++state->counters[key];
    }

    nnti::FaultAction action;
    auto record = [&](std::string_view what, std::string_view detail) {
      std::string line;
      line += what;
      line += ' ';
      line += nnti::op_name(op);
      line += " local=";
      line += local;
      line += " peer=";
      line += peer;
      line += str_format(" n=%llu", static_cast<unsigned long long>(n));
      if (!detail.empty()) {
        line += ' ';
        line += detail;
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      state->log.append(std::move(line));
      ++state->fired;
    };

    // Scripted rules first; the first matching rule of each effect class
    // wins. A fail short-circuits everything else.
    for (const FaultRule& rule : rules) {
      if (rule.op != op) continue;
      if (!glob_match(rule.local, local)) continue;
      if (!glob_match(rule.peer, peer)) continue;
      if (n < rule.nth || n >= rule.nth + rule.times) continue;
      switch (rule.kind) {
        case FaultKind::kFail:
          if (action.status.ok()) {
            action.status = make_error(
                rule.code, str_format("injected %s failure (occurrence %llu)",
                                      std::string(nnti::op_name(op)).c_str(),
                                      static_cast<unsigned long long>(n)));
            record("fail", "code=" + code_token(rule.code));
          }
          break;
        case FaultKind::kDrop:
          if (!action.drop) {
            action.drop = true;
            record("drop", "");
          }
          break;
        case FaultKind::kDelay:
          if (action.delay.count() == 0) {
            action.delay = rule.delay;
            record("delay", "");
          }
          break;
        case FaultKind::kDuplicate:
          if (!action.duplicate) {
            action.duplicate = true;
            record("dup", "");
          }
          break;
      }
    }

    if (random_on) {
      if (action.status.ok() && !action.drop && random_fails_op(profile, op)) {
        // Cap consecutive failures below the transport's retry budget by
        // re-deriving the previous occurrences' draws (stateless, so this
        // costs max_consecutive_fails extra hashes, no shared state).
        const bool droppable = random_drops_op(profile, op);
        auto fails_at = [&](std::uint64_t occ) {
          return occ >= 1 &&
                 (draw(seed, op, local, peer, occ, kLaneFail) <
                      profile.fail_prob ||
                  (droppable && draw(seed, op, local, peer, occ, kLaneDrop) <
                                    profile.drop_prob));
        };
        bool capped = false;
        if (profile.max_consecutive_fails > 0) {
          capped = true;
          for (int back = 1; back <= profile.max_consecutive_fails; ++back) {
            if (n < static_cast<std::uint64_t>(back) + 1 ||
                !fails_at(n - static_cast<std::uint64_t>(back))) {
              capped = false;
              break;
            }
          }
        }
        if (!capped) {
          if (draw(seed, op, local, peer, n, kLaneFail) < profile.fail_prob) {
            action.status =
                make_error(ErrorCode::kUnavailable,
                           str_format("injected random %s failure",
                                      std::string(nnti::op_name(op)).c_str()));
            record("fail", "code=unavailable rand=1");
          } else if (droppable && draw(seed, op, local, peer, n, kLaneDrop) <
                                      profile.drop_prob) {
            action.drop = true;
            record("drop", "rand=1");
          }
        }
      }
      if (action.delay.count() == 0 &&
          draw(seed, op, local, peer, n, kLaneDelay) < profile.delay_prob) {
        action.delay = std::chrono::microseconds(profile.delay_us);
        record("delay", "rand=1");
      }
      if (!action.duplicate && op == nnti::Op::kPutMessage &&
          draw(seed, op, local, peer, n, kLaneDup) < profile.dup_prob) {
        action.duplicate = true;
        record("dup", "rand=1");
      }
    }
    return action;
  };
}

void FaultPlan::install(nnti::Fabric* fabric) const {
  fabric->set_fault_hook(hook());
}

void FaultPlan::uninstall(nnti::Fabric* fabric) {
  fabric->set_fault_hook(nullptr);
}

std::uint64_t FaultPlan::faults_fired() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->fired;
}

}  // namespace flexio::torture
