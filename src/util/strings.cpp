#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flexio {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool parse_size(std::string_view s, std::size_t* out) {
  s = trim(s);
  if (s.empty()) return false;
  std::size_t mult = 1;
  switch (s.back()) {
    case 'K': case 'k': mult = 1ULL << 10; s.remove_suffix(1); break;
    case 'M': case 'm': mult = 1ULL << 20; s.remove_suffix(1); break;
    case 'G': case 'g': mult = 1ULL << 30; s.remove_suffix(1); break;
    default: break;
  }
  long long v = 0;
  if (!parse_int(s, &v) || v < 0) return false;
  *out = static_cast<std::size_t>(v) * mult;
  return true;
}

bool parse_int(std::string_view s, long long* out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool parse_double(std::string_view s, double* out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace flexio
