#include "util/flight_recorder.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/metrics.h"
#include "util/strings.h"

namespace flexio::flight {

namespace detail {
std::atomic<bool> g_active{false};
std::atomic<bool> g_due{false};
}  // namespace detail

namespace {

/// Previous-sample state for one metric, enough to compute deltas.
struct Prev {
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  std::uint64_t hist_count = 0;
  std::uint64_t hist_sum = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Singleton recorder. All mutation happens under mutex_; the hot-path
/// gates (g_active / g_due) are plain relaxed flags mirrored from it.
class Recorder {
 public:
  static Recorder& instance() {
    static Recorder* r = new Recorder;  // leaked: sampled during shutdown
    return *r;
  }

  Status start(const Options& options) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) {
      return make_error(ErrorCode::kFailedPrecondition,
                        "flight recorder already running");
    }
    options_ = options;
    out_.open(options_.path, std::ios::trunc);
    if (!out_) {
      return make_error(ErrorCode::kInternal,
                        "cannot open flight-recorder file: " + options_.path);
    }
    prev_.clear();
    for (const auto& [name, snap] : metrics::snapshot_all()) {
      note_prev(name, snap);
    }
    seq_ = 0;
    lines_ = 0;
    bytes_ = 0;
    running_ = true;
    stop_requested_ = false;
    detail::g_active.store(true, std::memory_order_relaxed);
    detail::g_due.store(false, std::memory_order_relaxed);
    write_line(str_format("{\"schema\":\"flexio-stats-v1\",\"seq\":0,"
                          "\"t_ns\":%llu,\"start\":true}",
                          static_cast<unsigned long long>(metrics::now_ns())));
    if (options_.background) {
      thread_ = std::thread([this] { run(); });
    }
    return Status::ok();
  }

  void stop() {
    std::thread to_join;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!running_) return;
      stop_requested_ = true;
      cv_.notify_all();
      to_join = std::move(thread_);
    }
    if (to_join.joinable()) to_join.join();
    std::unique_lock<std::mutex> lock(mutex_);
    sample_locked();  // final sample catches anything since the last tick
    running_ = false;
    detail::g_active.store(false, std::memory_order_relaxed);
    detail::g_due.store(false, std::memory_order_relaxed);
    out_.close();
  }

  Status sample_now() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_) {
      return make_error(ErrorCode::kFailedPrecondition,
                        "flight recorder not running");
    }
    sample_locked();
    return Status::ok();
  }

  void request_sample() { detail::g_due.store(true, std::memory_order_relaxed); }

  void sample_due() {
    if (!detail::g_due.exchange(false, std::memory_order_relaxed)) return;
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) sample_locked();
  }

  std::uint64_t samples_taken() {
    std::unique_lock<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  Recorder() = default;

  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_requested_) {
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
      if (stop_requested_) break;
      sample_locked();
    }
  }

  void note_prev(const std::string& name, const metrics::MetricSnapshot& s) {
    Prev& p = prev_[name];
    p.counter = s.counter;
    p.gauge = s.gauge;
    p.hist_count = s.hist.count;
    p.hist_sum = s.hist.sum;
  }

  void sample_locked() {
    const auto snaps = metrics::snapshot_all();
    std::string counters, gauges, hists;
    for (const auto& [name, snap] : snaps) {
      const Prev prev = prev_[name];  // default-zero for new metrics
      switch (snap.kind) {
        case metrics::MetricSnapshot::Kind::kCounter: {
          if (snap.counter != prev.counter) {
            if (!counters.empty()) counters += ",";
            counters += str_format(
                "\"%s\":%llu", json_escape(name).c_str(),
                static_cast<unsigned long long>(snap.counter - prev.counter));
          }
          break;
        }
        case metrics::MetricSnapshot::Kind::kGauge: {
          if (snap.gauge != prev.gauge) {
            if (!gauges.empty()) gauges += ",";
            gauges += str_format("\"%s\":%lld", json_escape(name).c_str(),
                                 static_cast<long long>(snap.gauge));
          }
          break;
        }
        case metrics::MetricSnapshot::Kind::kHistogram: {
          if (snap.hist.count != prev.hist_count ||
              snap.hist.sum != prev.hist_sum) {
            if (!hists.empty()) hists += ",";
            hists += str_format(
                "\"%s\":{\"count\":%llu,\"sum\":%llu}",
                json_escape(name).c_str(),
                static_cast<unsigned long long>(snap.hist.count -
                                                prev.hist_count),
                static_cast<unsigned long long>(snap.hist.sum -
                                                prev.hist_sum));
          }
          break;
        }
      }
      note_prev(name, snap);
    }
    if (counters.empty() && gauges.empty() && hists.empty()) return;
    ++seq_;
    std::string line = str_format(
        "{\"schema\":\"flexio-stats-v1\",\"seq\":%llu,\"t_ns\":%llu",
        static_cast<unsigned long long>(seq_),
        static_cast<unsigned long long>(metrics::now_ns()));
    if (!counters.empty()) line += ",\"counters\":{" + counters + "}";
    if (!gauges.empty()) line += ",\"gauges\":{" + gauges + "}";
    if (!hists.empty()) line += ",\"histograms\":{" + hists + "}";
    line += "}";
    write_line(line);
  }

  void write_line(const std::string& line) {
    if (bytes_ > 0 && bytes_ + line.size() + 1 > options_.max_bytes) {
      rotate();
    }
    out_ << line << "\n";
    out_.flush();
    bytes_ += line.size() + 1;
    ++lines_;
  }

  void rotate() {
    out_.close();
    for (int i = options_.max_rotations; i >= 1; --i) {
      const std::string from =
          i == 1 ? options_.path : options_.path + "." + std::to_string(i - 1);
      const std::string to = options_.path + "." + std::to_string(i);
      std::rename(from.c_str(), to.c_str());  // missing slots are fine
    }
    if (options_.max_rotations < 1) std::remove(options_.path.c_str());
    out_.open(options_.path, std::ios::trunc);
    bytes_ = 0;
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  Options options_;
  std::ofstream out_;
  std::map<std::string, Prev> prev_;
  std::uint64_t seq_ = 0;
  std::uint64_t lines_ = 0;
  std::size_t bytes_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace

namespace detail {
void sample_due() { Recorder::instance().sample_due(); }
}  // namespace detail

void request_sample() { Recorder::instance().request_sample(); }

Status start(const Options& options) {
  return Recorder::instance().start(options);
}

void stop() { Recorder::instance().stop(); }

Status sample_now() { return Recorder::instance().sample_now(); }

std::uint64_t samples_taken() { return Recorder::instance().samples_taken(); }

}  // namespace flexio::flight
