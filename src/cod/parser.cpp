#include "cod/parser.h"

#include "cod/lexer.h"
#include "util/strings.h"

namespace flexio::cod {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ProgramAst> parse_program() {
    ProgramAst program;
    while (peek().kind != Tok::kEnd) {
      auto fn = parse_function();
      if (!fn.is_ok()) return fn.status();
      if (program.find(fn.value().name) != nullptr) {
        return error("duplicate function: " + fn.value().name);
      }
      program.functions.push_back(std::move(fn).value());
    }
    return program;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }
  bool match(Tok kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status error(const std::string& what) const {
    return make_error(ErrorCode::kInvalidArgument,
                      str_format("cod line %d: %s", peek().line, what.c_str()));
  }

  Status expect(Tok kind) {
    if (peek().kind != kind) {
      return error(std::string("expected ") + std::string(tok_name(kind)) +
                   ", got " + std::string(tok_name(peek().kind)));
    }
    ++pos_;
    return Status::ok();
  }

  static bool is_type(Tok kind) {
    return kind == Tok::kInt || kind == Tok::kDouble || kind == Tok::kVoid;
  }

  StatusOr<FunctionAst> parse_function() {
    FunctionAst fn;
    fn.line = peek().line;
    if (!is_type(peek().kind)) {
      return error("expected a function definition (int/double/void)");
    }
    fn.returns_value = peek().kind != Tok::kVoid;
    advance();
    if (peek().kind != Tok::kIdent) return error("expected function name");
    fn.name = advance().text;
    FLEXIO_RETURN_IF_ERROR(expect(Tok::kLParen));
    if (!match(Tok::kRParen)) {
      for (;;) {
        if (!is_type(peek().kind) || peek().kind == Tok::kVoid) {
          return error("expected parameter type");
        }
        advance();
        if (peek().kind != Tok::kIdent) return error("expected parameter name");
        fn.params.push_back(advance().text);
        if (match(Tok::kRParen)) break;
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kComma));
      }
    }
    FLEXIO_RETURN_IF_ERROR(expect(Tok::kLBrace));
    while (!match(Tok::kRBrace)) {
      if (peek().kind == Tok::kEnd) return error("unterminated function body");
      auto stmt = parse_statement();
      if (!stmt.is_ok()) return stmt.status();
      fn.body.push_back(std::move(stmt).value());
    }
    return fn;
  }

  StatusOr<StmtPtr> parse_statement() {
    const int line = peek().line;
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;
    switch (peek().kind) {
      case Tok::kInt:
      case Tok::kDouble: {
        advance();
        stmt->kind = Stmt::Kind::kDecl;
        if (peek().kind != Tok::kIdent) return error("expected variable name");
        stmt->name = advance().text;
        if (match(Tok::kAssign)) {
          auto init = parse_expression();
          if (!init.is_ok()) return init.status();
          stmt->a = std::move(init).value();
        }
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kSemicolon));
        return stmt;
      }
      case Tok::kIf: {
        advance();
        stmt->kind = Stmt::Kind::kIf;
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kLParen));
        auto cond = parse_expression();
        if (!cond.is_ok()) return cond.status();
        stmt->a = std::move(cond).value();
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kRParen));
        auto body = parse_statement();
        if (!body.is_ok()) return body.status();
        stmt->body.push_back(std::move(body).value());
        if (match(Tok::kElse)) {
          auto else_body = parse_statement();
          if (!else_body.is_ok()) return else_body.status();
          stmt->else_body.push_back(std::move(else_body).value());
        }
        return stmt;
      }
      case Tok::kWhile: {
        advance();
        stmt->kind = Stmt::Kind::kWhile;
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kLParen));
        auto cond = parse_expression();
        if (!cond.is_ok()) return cond.status();
        stmt->a = std::move(cond).value();
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kRParen));
        auto body = parse_statement();
        if (!body.is_ok()) return body.status();
        stmt->body.push_back(std::move(body).value());
        return stmt;
      }
      case Tok::kFor: {
        advance();
        stmt->kind = Stmt::Kind::kFor;
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kLParen));
        if (!match(Tok::kSemicolon)) {
          auto init = parse_statement();  // decl or expr/assign stmt eats ';'
          if (!init.is_ok()) return init.status();
          stmt->init = std::move(init).value();
        }
        if (!match(Tok::kSemicolon)) {
          auto cond = parse_expression();
          if (!cond.is_ok()) return cond.status();
          stmt->a = std::move(cond).value();
          FLEXIO_RETURN_IF_ERROR(expect(Tok::kSemicolon));
        }
        if (peek().kind != Tok::kRParen) {
          auto step = parse_simple_statement(/*consume_semicolon=*/false);
          if (!step.is_ok()) return step.status();
          stmt->step = std::move(step).value();
        }
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kRParen));
        auto body = parse_statement();
        if (!body.is_ok()) return body.status();
        stmt->body.push_back(std::move(body).value());
        return stmt;
      }
      case Tok::kReturn: {
        advance();
        stmt->kind = Stmt::Kind::kReturn;
        if (!match(Tok::kSemicolon)) {
          auto value = parse_expression();
          if (!value.is_ok()) return value.status();
          stmt->a = std::move(value).value();
          FLEXIO_RETURN_IF_ERROR(expect(Tok::kSemicolon));
        }
        return stmt;
      }
      case Tok::kLBrace: {
        advance();
        stmt->kind = Stmt::Kind::kBlock;
        while (!match(Tok::kRBrace)) {
          if (peek().kind == Tok::kEnd) return error("unterminated block");
          auto inner = parse_statement();
          if (!inner.is_ok()) return inner.status();
          stmt->body.push_back(std::move(inner).value());
        }
        return stmt;
      }
      default:
        return parse_simple_statement(/*consume_semicolon=*/true);
    }
  }

  /// Assignment or expression statement (the only statements legal in a
  /// for-step position).
  StatusOr<StmtPtr> parse_simple_statement(bool consume_semicolon) {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;
    if (peek().kind == Tok::kIdent && peek(1).kind == Tok::kAssign) {
      stmt->kind = Stmt::Kind::kAssign;
      stmt->name = advance().text;
      advance();  // '='
      auto value = parse_expression();
      if (!value.is_ok()) return value.status();
      stmt->a = std::move(value).value();
    } else {
      stmt->kind = Stmt::Kind::kExpr;
      auto value = parse_expression();
      if (!value.is_ok()) return value.status();
      stmt->a = std::move(value).value();
    }
    if (consume_semicolon) FLEXIO_RETURN_IF_ERROR(expect(Tok::kSemicolon));
    return stmt;
  }

  // Precedence climbing: || < && < ==/!= < comparisons < +- < */% < unary.
  StatusOr<ExprPtr> parse_expression() { return parse_or(); }

  StatusOr<ExprPtr> parse_binary_level(
      StatusOr<ExprPtr> (Parser::*next)(), std::initializer_list<Tok> ops) {
    auto lhs = (this->*next)();
    if (!lhs.is_ok()) return lhs.status();
    ExprPtr result = std::move(lhs).value();
    for (;;) {
      bool matched = false;
      for (Tok op : ops) {
        if (peek().kind == op) {
          const int line = peek().line;
          advance();
          auto rhs = (this->*next)();
          if (!rhs.is_ok()) return rhs.status();
          auto node = std::make_unique<Expr>();
          node->kind = Expr::Kind::kBinary;
          node->op = op;
          node->line = line;
          node->args.push_back(std::move(result));
          node->args.push_back(std::move(rhs).value());
          result = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return result;
    }
  }

  StatusOr<ExprPtr> parse_or() {
    return parse_binary_level(&Parser::parse_and, {Tok::kOrOr});
  }
  StatusOr<ExprPtr> parse_and() {
    return parse_binary_level(&Parser::parse_equality, {Tok::kAndAnd});
  }
  StatusOr<ExprPtr> parse_equality() {
    return parse_binary_level(&Parser::parse_comparison,
                              {Tok::kEq, Tok::kNe});
  }
  StatusOr<ExprPtr> parse_comparison() {
    return parse_binary_level(&Parser::parse_additive,
                              {Tok::kLt, Tok::kLe, Tok::kGt, Tok::kGe});
  }
  StatusOr<ExprPtr> parse_additive() {
    return parse_binary_level(&Parser::parse_multiplicative,
                              {Tok::kPlus, Tok::kMinus});
  }
  StatusOr<ExprPtr> parse_multiplicative() {
    return parse_binary_level(&Parser::parse_unary,
                              {Tok::kStar, Tok::kSlash, Tok::kPercent});
  }

  StatusOr<ExprPtr> parse_unary() {
    if (peek().kind == Tok::kMinus || peek().kind == Tok::kBang) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->op = peek().kind;
      node->line = peek().line;
      advance();
      auto operand = parse_unary();
      if (!operand.is_ok()) return operand.status();
      node->args.push_back(std::move(operand).value());
      return node;
    }
    return parse_primary();
  }

  StatusOr<ExprPtr> parse_primary() {
    auto node = std::make_unique<Expr>();
    node->line = peek().line;
    switch (peek().kind) {
      case Tok::kNumber:
        node->kind = Expr::Kind::kNumber;
        node->number = advance().number;
        return node;
      case Tok::kLParen: {
        advance();
        auto inner = parse_expression();
        if (!inner.is_ok()) return inner.status();
        FLEXIO_RETURN_IF_ERROR(expect(Tok::kRParen));
        return std::move(inner).value();
      }
      case Tok::kIdent: {
        node->name = advance().text;
        if (match(Tok::kLParen)) {
          node->kind = Expr::Kind::kCall;
          if (!match(Tok::kRParen)) {
            for (;;) {
              auto arg = parse_expression();
              if (!arg.is_ok()) return arg.status();
              node->args.push_back(std::move(arg).value());
              if (match(Tok::kRParen)) break;
              FLEXIO_RETURN_IF_ERROR(expect(Tok::kComma));
            }
          }
          return node;
        }
        if (match(Tok::kLBracket)) {
          node->kind = Expr::Kind::kIndex;
          auto index = parse_expression();
          if (!index.is_ok()) return index.status();
          node->args.push_back(std::move(index).value());
          FLEXIO_RETURN_IF_ERROR(expect(Tok::kRBracket));
          return node;
        }
        node->kind = Expr::Kind::kVar;
        return node;
      }
      default:
        return error(std::string("unexpected ") +
                     std::string(tok_name(peek().kind)) + " in expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<ProgramAst> parse(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.is_ok()) return tokens.status();
  return Parser(std::move(tokens).value()).parse_program();
}

}  // namespace flexio::cod
