// Tests for the placement library: communication graphs, the multilevel
// partitioner, architecture trees, the tree mapper, and the three policies.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "placement/arch_tree.h"
#include "placement/graph.h"
#include "placement/mapper.h"
#include "placement/partitioner.h"
#include "placement/policies.h"
#include "util/rng.h"

namespace flexio::placement {
namespace {

TEST(CommGraphTest, EdgesAccumulateSymmetrically) {
  CommGraph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 0, 5);
  g.add_edge(2, 2, 99);  // self-edge ignored
  g.add_edge(1, 3, 0);   // zero weight ignored
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 15);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 15);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 2), 0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 15);
}

TEST(CommGraphTest, CutWeight) {
  CommGraph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(2, 3, 20);
  g.add_edge(1, 2, 5);
  EXPECT_DOUBLE_EQ(g.cut_weight({0, 0, 1, 1}), 5);
  EXPECT_DOUBLE_EQ(g.cut_weight({0, 1, 0, 1}), 35);
}

TEST(CommGraphTest, CoupledGraphLayout) {
  // 2 writers, 2 readers; writer w sends to reader w.
  std::vector<std::vector<std::uint64_t>> inter{{100, 0}, {0, 200}};
  auto sim_intra = grid2d_traffic(2, 7.0);
  const CommGraph g = build_coupled_graph(inter, sim_intra, {});
  EXPECT_EQ(g.size(), 4);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 100);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 3), 200);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 7);   // sim intra
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 3), 0);   // analytics intra empty
}

TEST(TrafficPatternTest, Grid2dNeighborCounts) {
  const auto m = grid2d_traffic(6, 1.0);  // 2x3 grid
  double total = 0;
  for (const auto& row : m) {
    for (double v : row) total += v;
  }
  // 2x3 grid: 7 undirected edges, counted twice.
  EXPECT_DOUBLE_EQ(total, 14);
}

TEST(TrafficPatternTest, Grid3dNeighborCounts) {
  const auto m = grid3d_traffic(8, 1.0);  // 2x2x2
  double total = 0;
  for (const auto& row : m) {
    for (double v : row) total += v;
  }
  // 2x2x2 cube: 12 undirected edges.
  EXPECT_DOUBLE_EQ(total, 24);
}

TEST(PartitionerTest, ExactSizesRespected) {
  CommGraph g(10);
  for (int i = 0; i < 9; ++i) g.add_edge(i, i + 1, 1);
  auto parts = partition_sizes(g, {3, 3, 4});
  ASSERT_TRUE(parts.is_ok()) << parts.status().to_string();
  std::vector<int> counts(3, 0);
  for (int p : parts.value()) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 3);
    ++counts[static_cast<std::size_t>(p)];
  }
  EXPECT_EQ(counts, (std::vector<int>{3, 3, 4}));
}

TEST(PartitionerTest, ObviousClustersFound) {
  // Two 5-cliques joined by one weak edge: the bisection must cut the
  // weak edge, not the cliques.
  CommGraph g(10);
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      g.add_edge(a, b, 100);
      g.add_edge(a + 5, b + 5, 100);
    }
  }
  g.add_edge(4, 5, 1);
  auto parts = partition(g, 2);
  ASSERT_TRUE(parts.is_ok());
  EXPECT_DOUBLE_EQ(g.cut_weight(parts.value()), 1);
}

TEST(PartitionerTest, InvalidInputsRejected) {
  CommGraph g(4);
  EXPECT_FALSE(partition_sizes(g, {2, 3}).is_ok());  // sums to 5
  EXPECT_FALSE(partition_sizes(g, {}).is_ok());
  EXPECT_FALSE(partition_sizes(g, {5, -1}).is_ok());
  EXPECT_FALSE(partition(g, 0).is_ok());
}

TEST(PartitionerTest, Deterministic) {
  Rng rng(3);
  CommGraph g(40);
  for (int i = 0; i < 200; ++i) {
    g.add_edge(static_cast<int>(rng.next_below(40)),
               static_cast<int>(rng.next_below(40)),
               1.0 + rng.next_double() * 9);
  }
  auto a = partition(g, 5);
  auto b = partition(g, 5);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());
}

// Property: partitions always have exact sizes and beat a round-robin
// baseline's cut on clustered graphs.
class PartitionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionPropertyTest, SizesExactAndCutReasonable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 24 + static_cast<int>(rng.next_below(60));
  const int parts = 2 + static_cast<int>(rng.next_below(5));
  CommGraph g(n);
  // Clustered topology: ring of dense pockets.
  const int pocket = std::max(2, n / parts);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < std::min(n, i + pocket / 2 + 1); ++j) {
      g.add_edge(i, j, 10.0 + rng.next_double());
    }
    g.add_edge(i, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))),
               0.5);
  }
  auto result = partition(g, parts);
  ASSERT_TRUE(result.is_ok());
  std::vector<int> counts(static_cast<std::size_t>(parts), 0);
  for (int p : result.value()) ++counts[static_cast<std::size_t>(p)];
  for (int i = 0; i < parts; ++i) {
    const int expect = n / parts + (i < n % parts ? 1 : 0);
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], expect);
  }
  // Round-robin baseline.
  std::vector<int> rr(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rr[static_cast<std::size_t>(i)] = i % parts;
  EXPECT_LE(g.cut_weight(result.value()), g.cut_weight(rr));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionPropertyTest, ::testing::Range(0, 15));

TEST(PartitionerTest, SubsetSizesExact) {
  CommGraph g(12);
  for (int i = 0; i < 11; ++i) g.add_edge(i, i + 1, 1);
  // Partition only the even vertices into parts of 2, 2, 2.
  std::vector<int> subset{0, 2, 4, 6, 8, 10};
  auto parts = partition_subset(g, subset, {2, 2, 2});
  ASSERT_TRUE(parts.is_ok()) << parts.status().to_string();
  std::vector<int> counts(3, 0);
  for (int p : parts.value()) ++counts[static_cast<std::size_t>(p)];
  EXPECT_EQ(counts, (std::vector<int>{2, 2, 2}));
  // Bad sizes rejected.
  EXPECT_FALSE(partition_subset(g, subset, {3, 2}).is_ok());
  EXPECT_FALSE(partition_subset(g, subset, {}).is_ok());
}

TEST(ArchTreeTest, TwoLevelShape) {
  const ArchTree tree = ArchTree::two_level(sim::smoky(), 3);
  EXPECT_EQ(tree.total_cores(), 48);
  EXPECT_EQ(tree.root().children.size(), 3u);
  EXPECT_EQ(tree.root().children[0]->children.size(), 16u);
  EXPECT_TRUE(tree.root().children[0]->children[0]->is_leaf());
}

TEST(ArchTreeTest, TopologyAwareShape) {
  const ArchTree tree = ArchTree::topology_aware(sim::smoky(), 2);
  EXPECT_EQ(tree.root().children.size(), 2u);                  // nodes
  EXPECT_EQ(tree.root().children[0]->children.size(), 4u);     // sockets
  EXPECT_EQ(tree.root().children[0]->children[0]->children.size(), 4u);
}

TEST(ArchTreeTest, CoreDistanceOrdering) {
  const ArchTree tree = ArchTree::topology_aware(sim::smoky(), 2);
  const double same_core = tree.core_distance(0, 0);
  const double same_socket = tree.core_distance(0, 1);
  const double same_node = tree.core_distance(0, 5);    // socket 0 vs 1
  const double cross_node = tree.core_distance(0, 20);  // node 0 vs 1
  EXPECT_EQ(same_core, 0);
  EXPECT_LT(same_socket, same_node);
  EXPECT_LT(same_node, cross_node);
}

TEST(MapperTest, AssignsDistinctCores) {
  const ArchTree tree = ArchTree::two_level(sim::smoky(), 2);
  CommGraph g(20);
  for (int i = 0; i < 19; ++i) g.add_edge(i, i + 1, 1);
  auto cores = map_graph(g, tree);
  ASSERT_TRUE(cores.is_ok()) << cores.status().to_string();
  std::set<long> used(cores.value().begin(), cores.value().end());
  EXPECT_EQ(used.size(), 20u);
  for (long c : cores.value()) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 32);
  }
}

TEST(MapperTest, HeavyPairsStayClose) {
  // Pairs (2i, 2i+1) talk heavily; the mapper must co-locate them at the
  // lowest tree level available.
  const ArchTree tree = ArchTree::topology_aware(sim::smoky(), 1);
  CommGraph g(8);
  for (int i = 0; i < 8; i += 2) g.add_edge(i, i + 1, 1000);
  for (int i = 0; i < 8; ++i) g.add_edge(i, (i + 2) % 8, 1);
  auto cores = map_graph(g, tree);
  ASSERT_TRUE(cores.is_ok());
  for (int i = 0; i < 8; i += 2) {
    const auto a = sim::smoky().locate(cores.value()[static_cast<std::size_t>(i)]);
    const auto b =
        sim::smoky().locate(cores.value()[static_cast<std::size_t>(i) + 1]);
    EXPECT_EQ(a.socket, b.socket) << "pair " << i;
  }
}

TEST(MapperTest, OvercommitRejected) {
  const ArchTree tree = ArchTree::two_level(sim::smoky(), 1);
  CommGraph g(17);  // 16 cores per Smoky node
  EXPECT_EQ(map_graph(g, tree).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST(AllocationTest, SyncMatchesProductionRate) {
  AllocationModel model;
  model.sim_interval = 2.0;
  model.analytics_time = [](int p) { return 8.0 / p; };  // perfect scaling
  EXPECT_EQ(allocate_analytics(model, /*async=*/false), 4);
}

TEST(AllocationTest, AsyncBudgetsMovementTime) {
  AllocationModel model;
  model.sim_interval = 2.0;
  model.bytes_per_step = 1e9;
  model.p2p_bandwidth = 1e9;  // movement costs 1s of the 2s budget
  model.analytics_time = [](int p) { return 8.0 / p; };
  EXPECT_EQ(allocate_analytics(model, /*async=*/true), 8);
}

TEST(AllocationTest, InfeasibleReturnsMax) {
  AllocationModel model;
  model.sim_interval = 0.001;
  model.max_processes = 64;
  model.analytics_time = [](int) { return 1.0; };  // never fits
  EXPECT_EQ(allocate_analytics(model, false), 64);
}

PlacementRequest gts_like_request(Policy policy) {
  // 12 sim ranks + 4 analytics ranks on Smoky (16 cores/node): all fit on
  // one node; inter-program traffic is rank-affine (w -> w % 4).
  PlacementRequest req;
  req.machine = sim::smoky();
  req.policy = policy;
  req.sim_processes = 12;
  req.analytics_processes = 4;
  req.inter.assign(12, std::vector<std::uint64_t>(4, 0));
  for (int w = 0; w < 12; ++w) {
    req.inter[static_cast<std::size_t>(w)][static_cast<std::size_t>(w % 4)] =
        110ull << 20;
  }
  req.sim_intra = grid2d_traffic(12, 1 << 20);
  req.analytics_intra = grid2d_traffic(4, 1 << 18);
  return req;
}

TEST(PolicyTest, HelperCorePlacementWhenEverythingFits) {
  for (Policy policy :
       {Policy::kDataAware, Policy::kHolistic, Policy::kTopologyAware}) {
    auto result = place(gts_like_request(policy));
    ASSERT_TRUE(result.is_ok()) << policy_name(policy);
    EXPECT_EQ(result.value().nodes_used, 1);
    EXPECT_EQ(result.value().kind, PlacementKind::kHelperCore)
        << policy_name(policy);
    // Everything on one node: no inter-node movement at all.
    EXPECT_DOUBLE_EQ(result.value().inter_node_bytes, 0);
    EXPECT_GT(result.value().intra_node_bytes, 0);
  }
}

TEST(PolicyTest, MultiNodeKeepsAffinePairsTogether) {
  // 24 sim + 8 analytics on Smoky = 2 nodes; rank-affine traffic means the
  // partitioner should co-locate each analytics rank with its senders.
  PlacementRequest req;
  req.machine = sim::smoky();
  req.policy = Policy::kHolistic;
  req.sim_processes = 24;
  req.analytics_processes = 8;
  req.inter.assign(24, std::vector<std::uint64_t>(8, 0));
  for (int w = 0; w < 24; ++w) {
    req.inter[static_cast<std::size_t>(w)][static_cast<std::size_t>(w / 3)] =
        110ull << 20;
  }
  req.sim_intra = grid2d_traffic(24, 1 << 16);  // weak internal traffic
  auto result = place(req);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().nodes_used, 2);
  EXPECT_EQ(result.value().kind, PlacementKind::kHelperCore);
  // Most inter-program volume should stay on-node (paper: helper-core
  // placement avoids moving particle data through the interconnect).
  EXPECT_GT(result.value().intra_node_bytes,
            4 * result.value().inter_node_bytes);
}

TEST(PolicyTest, DominantInternalTrafficYieldsStaging) {
  // S3D-like: tiny inter-program volume, heavy internal MPI traffic on
  // both sides -> the partitioner separates the programs (staging).
  PlacementRequest req;
  req.machine = sim::smoky();
  req.policy = Policy::kHolistic;
  req.sim_processes = 16;
  req.analytics_processes = 16;
  req.inter.assign(16, std::vector<std::uint64_t>(16, 0));
  for (int w = 0; w < 16; ++w) {
    for (int r = 0; r < 16; ++r) {
      req.inter[static_cast<std::size_t>(w)][static_cast<std::size_t>(r)] = 1024;
    }
  }
  // Make each program a clique of heavy traffic.
  req.sim_intra.assign(16, std::vector<double>(16, 100e6));
  req.analytics_intra.assign(16, std::vector<double>(16, 100e6));
  auto result = place(req);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().nodes_used, 2);
  EXPECT_EQ(result.value().kind, PlacementKind::kStaging);
}

TEST(PolicyTest, TopologyAwareReportsNumaPinning) {
  auto result = place(gts_like_request(Policy::kTopologyAware));
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result.value().buffer_numa_domain.size(), 12u);
  for (std::size_t w = 0; w < 12; ++w) {
    const auto loc =
        sim::smoky().locate(result.value().sim_core[w]);
    EXPECT_EQ(result.value().buffer_numa_domain[w], loc.socket);
  }
  // Holistic does not emit pinning decisions.
  auto holistic = place(gts_like_request(Policy::kHolistic));
  ASSERT_TRUE(holistic.is_ok());
  EXPECT_TRUE(holistic.value().buffer_numa_domain.empty());
}

TEST(PolicyTest, TopologyAwareNeverWorseOnTopoCost) {
  // Mapping cost evaluated on the detailed tree: the topology-aware policy
  // optimizes that objective directly, so it must not lose to holistic.
  PlacementRequest req = gts_like_request(Policy::kHolistic);
  auto holistic = place(req);
  req.policy = Policy::kTopologyAware;
  auto topo = place(req);
  ASSERT_TRUE(holistic.is_ok());
  ASSERT_TRUE(topo.is_ok());
  const ArchTree detailed = ArchTree::topology_aware(sim::smoky(), 1);
  const CommGraph graph = build_coupled_graph(
      req.inter, req.sim_intra, req.analytics_intra);
  std::vector<long> holistic_cores = holistic.value().sim_core;
  holistic_cores.insert(holistic_cores.end(),
                        holistic.value().analytics_core.begin(),
                        holistic.value().analytics_core.end());
  std::vector<long> topo_cores = topo.value().sim_core;
  topo_cores.insert(topo_cores.end(), topo.value().analytics_core.begin(),
                    topo.value().analytics_core.end());
  EXPECT_LE(mapping_cost(graph, detailed, topo_cores),
            mapping_cost(graph, detailed, holistic_cores) + 1e-9);
}

TEST(PolicyTest, BadInputsRejected) {
  PlacementRequest req;
  req.machine = sim::smoky();
  req.sim_processes = 0;
  EXPECT_FALSE(place(req).is_ok());
  req.sim_processes = 4;
  req.inter.assign(2, {});  // wrong row count
  EXPECT_FALSE(place(req).is_ok());
  // Too big for the machine.
  PlacementRequest big = gts_like_request(Policy::kHolistic);
  big.sim_processes = sim::smoky().num_nodes * 16 + 1;
  big.analytics_processes = 0;
  big.inter.assign(static_cast<std::size_t>(big.sim_processes),
                   std::vector<std::uint64_t>{});
  big.sim_intra.clear();
  big.analytics_intra.clear();
  EXPECT_FALSE(place(big).is_ok());
}

}  // namespace
}  // namespace flexio::placement
