// Calibrated evaluation scenarios for the paper's two applications.
//
// These builders encode the experimental setups of Section IV as
// CoupledConfig instances: GTS production runs (110 MB per process every
// two cycles, OpenMP/MPI hybrid, analytics = distribution function + range
// query + histograms) and S3D_Box runs (22 species arrays, 1.7 MB per
// process every ten cycles, analytics = parallel volume rendering), each
// under every placement variant the figures compare. Calibration targets
// the paper's published ratios, not absolute times: the 2.7% cost of
// yielding one core, the 23.6% inline analytics weight, the 67% helper
// idle fraction, the <15% staging interference, and the 128:1 S3D
// simulation-to-analytics ratio.
#pragma once

#include "apps/coupled_model.h"

namespace flexio::apps {

/// The series of Figure 6 (GTS) in plot order.
enum class GtsVariant {
  kInline,
  kHelperDataAware,
  kHelperHolistic,
  kHelperTopoAware,
  kStaging,
  kSolo,  // lower bound
};
std::string_view gts_variant_name(GtsVariant v);
inline constexpr GtsVariant kAllGtsVariants[] = {
    GtsVariant::kInline,         GtsVariant::kHelperDataAware,
    GtsVariant::kHelperHolistic, GtsVariant::kHelperTopoAware,
    GtsVariant::kStaging,        GtsVariant::kSolo};

/// Build the GTS scenario for `gts_cores` total simulation cores.
CoupledConfig gts_scenario(const sim::MachineDesc& machine, int gts_cores,
                           GtsVariant variant);

/// The series of Figure 9 (S3D_Box) in plot order.
enum class S3dVariant {
  kInline,
  kHybridDataAware,
  kStagingHolistic,
  kStagingTopoAware,
  kSolo,  // lower bound
};
std::string_view s3d_variant_name(S3dVariant v);
inline constexpr S3dVariant kAllS3dVariants[] = {
    S3dVariant::kInline, S3dVariant::kHybridDataAware,
    S3dVariant::kStagingHolistic, S3dVariant::kStagingTopoAware,
    S3dVariant::kSolo};

/// Build the S3D_Box scenario for `s3d_cores` total simulation cores.
CoupledConfig s3d_scenario(const sim::MachineDesc& machine, int s3d_cores,
                           S3dVariant variant);

}  // namespace flexio::apps
