// Elastic MxN membership, end to end: readers join, leave, and crash while
// a writer keeps stepping. Every scenario runs the real stress driver
// (Runtime + StreamWriter/StreamReader rank threads) with directory
// liveness on, checks the survivors against the golden model, and pins the
// membership counters -- joins/leaves/deaths, the final epoch, and exactly
// one handshake re-plan per epoch change.
#include <gtest/gtest.h>

#include <chrono>

#include "harness/fault_plan.h"
#include "harness/stress_driver.h"
#include "util/metrics.h"

namespace flexio::torture {
namespace {

// ------------------------------------------- rank-action grammar (unit) --

TEST(RankActionTest, ScriptRoundTrips) {
  const std::string script =
      "kill rank=1 step=2 point=pre_reads\n"
      "leave rank=2 step=1 point=end\n"
      "respawn rank=1 step=3\n"
      "delay_hb rank=1 step=2 point=begin delay_ms=300\n";
  auto plan = FaultPlan::parse(script);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_EQ(plan.value().script(), script);
  ASSERT_EQ(plan.value().rank_actions().size(), 4u);
  EXPECT_EQ(plan.value().rank_actions()[0].op, RankOp::kKill);
  EXPECT_EQ(plan.value().rank_actions()[0].point, StepPoint::kPreReads);
  EXPECT_EQ(plan.value().rank_actions()[3].delay,
            std::chrono::milliseconds(300));
  // Reparse of the canonical form is identical again.
  auto again = FaultPlan::parse(plan.value().script());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().script(), script);
}

TEST(RankActionTest, MixedFabricAndRankScript) {
  // Fabric rules and rank actions share one script; both round-trip.
  auto plan = FaultPlan::parse(
      "fail putmsg nth=1 code=timeout\nkill rank=1 step=0 point=begin\n");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_EQ(plan.value().rank_actions().size(), 1u);
  EXPECT_EQ(plan.value().script(),
            "fail putmsg nth=1 code=timeout\nkill rank=1 step=0 point=begin\n");
}

TEST(RankActionTest, MalformedActionsRejected) {
  // Missing rank.
  EXPECT_EQ(FaultPlan::parse("kill step=1").status().code(),
            ErrorCode::kInvalidArgument);
  // The coordinator can never be a victim.
  EXPECT_EQ(FaultPlan::parse("kill rank=0 step=1").status().code(),
            ErrorCode::kInvalidArgument);
  // leave only fires at step boundaries.
  EXPECT_EQ(FaultPlan::parse("leave rank=1 step=1 point=pre_reads")
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  // delay_ms only applies to delay_hb.
  EXPECT_EQ(FaultPlan::parse("kill rank=1 step=1 delay_ms=5").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::parse("kill rank=1 point=sideways").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(RankActionTest, SeededDerivationIsDeterministicAndValid) {
  const int readers = 3, steps = 6;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FaultPlan plan =
        FaultPlan::random_membership(seed, readers, steps, /*respawn=*/true);
    const FaultPlan again =
        FaultPlan::random_membership(seed, readers, steps, /*respawn=*/true);
    EXPECT_EQ(plan.script(), again.script()) << "seed " << seed;
    ASSERT_GE(plan.rank_actions().size(), 1u);
    const RankAction& kill = plan.rank_actions()[0];
    EXPECT_EQ(kill.op, RankOp::kKill);
    EXPECT_GE(kill.rank, 1);
    EXPECT_LT(kill.rank, readers);
    EXPECT_GE(kill.step, 1);
    EXPECT_LE(kill.step, steps - 2);
    if (plan.rank_actions().size() == 2) {
      const RankAction& back = plan.rank_actions()[1];
      EXPECT_EQ(back.op, RankOp::kRespawn);
      EXPECT_EQ(back.rank, kill.rank);
      // At least one full step between death and rejoin, and the rejoin
      // step must exist so the writer's pre-step wait can anchor it.
      EXPECT_GE(back.step, kill.step + 2);
      EXPECT_LE(back.step, steps - 1);
    }
  }
  // Different seeds produce different plans (not a constant derivation).
  EXPECT_NE(FaultPlan::random_membership(1, readers, steps, true).script(),
            FaultPlan::random_membership(2, readers, steps, true).script());
}

// --------------------------------------------------- end-to-end elastic --

class MembershipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    metrics::reset_all();
  }
  void TearDown() override { metrics::set_enabled(false); }

  static std::uint64_t counter(const char* name) {
    return metrics::counter(name).value();
  }
};

StressConfig membership_config(const char* stream) {
  StressConfig cfg;
  cfg.writers = 2;
  cfg.readers = 3;
  cfg.steps = 5;
  cfg.caching = "all";
  cfg.placement = PlacementMode::kShm;
  cfg.stream = stream;
  cfg.membership = true;
  cfg.membership_ttl_ms = 250;
  cfg.timeout_ms = 30000;
  return cfg;
}

TEST_F(MembershipTest, StableGroupBehavesLikeFrozenMatrix) {
  // Liveness on but nobody leaves: the handshake count, step delivery, and
  // golden data must be exactly the frozen-membership behavior -- one
  // handshake under CACHING_ALL, zero re-plans, epoch == initial joins.
  const StressConfig cfg = membership_config("member_stable");
  const StressResult result = run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_GT(result.elements_verified, 0u);
  ASSERT_EQ(result.reader_outcomes.size(), 3u);
  for (const RankOutcome& o : result.reader_outcomes) {
    EXPECT_TRUE(o.ran);
    EXPECT_EQ(o.steps_seen, cfg.steps);
    EXPECT_FALSE(o.killed || o.left || o.fenced);
  }
  EXPECT_EQ(counter("flexio.membership.joins"), 3u);
  EXPECT_EQ(counter("flexio.membership.leaves"), 0u);
  EXPECT_EQ(counter("flexio.membership.deaths"), 0u);
  EXPECT_EQ(result.final_epoch, 3u);  // one bump per initial join
  ASSERT_TRUE(result.report.has_value());
  EXPECT_EQ(result.report->handshakes_performed, 1u);
  EXPECT_EQ(result.report->handshakes_skipped,
            static_cast<std::uint64_t>(cfg.steps) - 1);
}

TEST_F(MembershipTest, GracefulLeaveAtStepBoundaryReplansExactlyOnce) {
  // Reader 2 drains step 1 and departs. Under CACHING_ALL the one epoch
  // change must force exactly one extra handshake (plan re-exchange), after
  // which the survivors' cached plans are valid again.
  auto plan = FaultPlan::parse("leave rank=2 step=1 point=end\n");
  ASSERT_TRUE(plan.is_ok());
  StressConfig cfg = membership_config("member_leave");
  cfg.faults = &plan.value();

  const std::uint64_t misses_before = counter("flexio.plan.cache_misses");
  const StressResult result = run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string() << "\n"
                                     << plan.value().log().canonical();
  const RankOutcome& gone = result.reader_outcomes[2];
  EXPECT_TRUE(gone.left);
  EXPECT_EQ(gone.steps_seen, 2);  // drained steps 0 and 1, then left
  EXPECT_EQ(result.reader_outcomes[0].steps_seen, cfg.steps);
  EXPECT_EQ(result.reader_outcomes[1].steps_seen, cfg.steps);

  EXPECT_EQ(counter("flexio.membership.joins"), 3u);
  EXPECT_EQ(counter("flexio.membership.leaves"), 1u);
  EXPECT_EQ(counter("flexio.membership.deaths"), 0u);
  EXPECT_EQ(result.final_epoch, 4u);  // 3 joins + 1 leave

  // Exactly one re-plan: initial handshake + the epoch-change re-exchange.
  ASSERT_TRUE(result.report.has_value());
  EXPECT_EQ(result.report->handshakes_performed, 2u);
  EXPECT_EQ(result.report->handshakes_skipped,
            static_cast<std::uint64_t>(cfg.steps) - 2);
  // The PR3 plan caches were invalidated once per rank, no more: every
  // writer rank re-plans, every surviving reader rank re-plans.
  const std::uint64_t misses = counter("flexio.plan.cache_misses") -
                               misses_before;
  const std::uint64_t initial =
      static_cast<std::uint64_t>(cfg.writers + cfg.readers);
  EXPECT_GE(misses, initial + 2u);  // at least both writers re-planned
  EXPECT_LE(misses, initial + static_cast<std::uint64_t>(cfg.writers) + 2u);
}

TEST_F(MembershipTest, CrashMidStepIsExcisedAndSurvivorsConverge) {
  // Reader 1 dies inside step 1 (after begin_step, before its reads). The
  // TTL detector must declare it dead, the writer must drop its in-flight
  // pieces and re-plan over the survivors, and the stream must run to EOS
  // with every surviving value still golden.
  auto plan = FaultPlan::parse("kill rank=1 step=1 point=pre_reads\n");
  ASSERT_TRUE(plan.is_ok());
  StressConfig cfg = membership_config("member_crash");
  cfg.caching = "none";  // handshake every step: excision visible fast
  cfg.steps = 6;
  cfg.faults = &plan.value();

  const StressResult result = run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string() << "\n"
                                     << plan.value().log().canonical();
  const RankOutcome& victim = result.reader_outcomes[1];
  EXPECT_TRUE(victim.killed);
  EXPECT_EQ(victim.steps_seen, 1);  // completed step 0 only
  EXPECT_EQ(result.reader_outcomes[0].steps_seen, cfg.steps);
  EXPECT_EQ(result.reader_outcomes[2].steps_seen, cfg.steps);

  EXPECT_EQ(counter("flexio.membership.deaths"), 1u);
  EXPECT_EQ(counter("flexio.membership.leaves"), 0u);
  EXPECT_EQ(result.final_epoch, 4u);  // 3 joins + 1 death
  // The writer was never stalled indefinitely by the dead reader: its
  // slowest step is bounded by detection (TTL) plus the tolerated-loss
  // confirmation window, far under this ceiling.
  EXPECT_LT(result.max_writer_step_seconds, 10.0);
}

TEST_F(MembershipTest, RespawnedRankRejoinsMidStreamAndVerifies) {
  // Kill reader 1 before step 1, bring a fresh incarnation back for step 3.
  // The rejoiner bootstraps from the directory's open-info blob, is
  // admitted at an epoch-stamped announce, and verifies golden data for
  // the steps it attends -- keyed by announced step id, not a local count.
  auto plan = FaultPlan::parse(
      "kill rank=1 step=1 point=begin\nrespawn rank=1 step=3\n");
  ASSERT_TRUE(plan.is_ok());
  StressConfig cfg = membership_config("member_respawn");
  cfg.caching = "local";
  cfg.steps = 6;
  cfg.faults = &plan.value();

  const StressResult result = run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string() << "\n"
                                     << plan.value().log().canonical();
  const RankOutcome& victim = result.reader_outcomes[1];
  EXPECT_TRUE(victim.killed);
  EXPECT_EQ(victim.steps_seen, 1);
  EXPECT_TRUE(victim.respawned);
  // The harness pins the respawn as directory-visible before the writer
  // produces step 3, so the rejoiner attends at least steps 3..5. It may
  // catch an earlier announce too -- the supervisor rejoins as soon as the
  // death lands, and if detection (one TTL) outpaces the writer's early
  // steps the rejoin epoch covers step 1 or 2 -- but never step 0, which
  // the dead incarnation completed before the kill.
  EXPECT_GE(victim.steps_after_respawn, cfg.steps - 3);
  EXPECT_LE(victim.steps_after_respawn, cfg.steps - 1);
  EXPECT_EQ(result.reader_outcomes[0].steps_seen, cfg.steps);
  EXPECT_EQ(result.reader_outcomes[2].steps_seen, cfg.steps);

  EXPECT_EQ(counter("flexio.membership.joins"), 4u);  // 3 initial + rejoin
  EXPECT_EQ(counter("flexio.membership.deaths"), 1u);
  EXPECT_EQ(result.final_epoch, 5u);  // 4 joins + 1 death
}

TEST_F(MembershipTest, HeartbeatDelayWithinTtlIsHarmless) {
  // A pause shorter than the TTL must not kill anyone: no deaths, no
  // epoch churn, full delivery.
  auto plan = FaultPlan::parse(
      "delay_hb rank=1 step=1 point=begin delay_ms=60\n");
  ASSERT_TRUE(plan.is_ok());
  StressConfig cfg = membership_config("member_slow_ok");
  cfg.membership_ttl_ms = 400;
  cfg.faults = &plan.value();

  const StressResult result = run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  for (const RankOutcome& o : result.reader_outcomes) {
    EXPECT_EQ(o.steps_seen, cfg.steps);
    EXPECT_FALSE(o.fenced);
  }
  EXPECT_EQ(counter("flexio.membership.deaths"), 0u);
  EXPECT_EQ(result.final_epoch, 3u);
}

TEST_F(MembershipTest, StalledRankIsFencedNotResurrected) {
  // A pause several TTLs long gets the rank declared dead. When its
  // heartbeats resume, the directory rejects them (stale incarnation
  // fencing) and the rank must observe fenced() instead of silently
  // rejoining -- a zombie cannot resurrect itself.
  auto plan = FaultPlan::parse(
      "delay_hb rank=1 step=1 point=begin delay_ms=500\n");
  ASSERT_TRUE(plan.is_ok());
  StressConfig cfg = membership_config("member_fence");
  cfg.caching = "none";
  cfg.membership_ttl_ms = 200;
  cfg.steps = 6;
  // Pace the writer so the stream outlives the victim's heartbeat pause:
  // the fencing rejection only reaches the rank when its first post-pause
  // beat finds the group still registered. Flat out, all six steps (and
  // the close that drops the group) finish before the pause expires.
  cfg.step_delay_ms = 150;
  cfg.faults = &plan.value();

  const StressResult result = run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string() << "\n"
                                     << plan.value().log().canonical();
  const RankOutcome& victim = result.reader_outcomes[1];
  EXPECT_TRUE(victim.fenced);
  EXPECT_FALSE(victim.killed);
  EXPECT_EQ(result.reader_outcomes[0].steps_seen, cfg.steps);
  EXPECT_EQ(result.reader_outcomes[2].steps_seen, cfg.steps);
  EXPECT_EQ(counter("flexio.membership.deaths"), 1u);
  EXPECT_LT(result.max_writer_step_seconds, 10.0);
}

}  // namespace
}  // namespace flexio::torture
