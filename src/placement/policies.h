// Placement policies (paper Section III).
//
// Three heuristic policies decide where analytics processes run and which
// core every process binds to:
//  * data-aware mapping  -- graph-partition only the inter-program
//    communication matrix into node-sized groups (Section III.B.1);
//  * holistic placement  -- also performs resource allocation (scale the
//    analytics to match the simulation's data production rate, sync or
//    async variant) and includes intra-program MPI traffic, mapping onto a
//    two-level machine tree (Section III.B.2);
//  * node-topology-aware -- the holistic policy on a multi-level
//    cache/NUMA tree, additionally pinning FlexIO's shared-memory buffers
//    in the simulation's NUMA domain (Section III.B.3).
#pragma once

#include <functional>

#include "placement/mapper.h"
#include "util/status.h"

namespace flexio::placement {

enum class Policy { kDataAware, kHolistic, kTopologyAware };

std::string_view policy_name(Policy p);

/// Where the analytics ended up relative to the simulation.
enum class PlacementKind { kInline, kHelperCore, kStaging, kHybrid };

std::string_view placement_kind_name(PlacementKind k);

/// Inputs to the resource-allocation step (holistic policy).
struct AllocationModel {
  double sim_interval = 1.0;    // seconds between simulation output steps
  double bytes_per_step = 0;    // total inter-program volume per step
  /// Strong-scaling analytics compute time T(P) in seconds.
  std::function<double(int)> analytics_time;
  /// Conservative point-to-point movement bandwidth (bytes/s); the async
  /// variant budgets movement time as bytes_per_step / p2p_bandwidth, which
  /// deliberately over-provisions (paper: sequential-movement assumption).
  double p2p_bandwidth = 1e9;
  int min_processes = 1;
  int max_processes = 1 << 16;
};

/// Smallest analytics process count that keeps the pipeline from stalling:
/// sync:  T(P) <= interval;  async: bytes/bw + T(P) <= interval.
/// Returns max_processes when no count satisfies the constraint.
int allocate_analytics(const AllocationModel& model, bool async_movement);

struct PlacementRequest {
  sim::MachineDesc machine;
  Policy policy = Policy::kHolistic;
  int sim_processes = 1;
  int analytics_processes = 1;
  /// Inter-program volume matrix [sim][analytics], bytes per step.
  std::vector<std::vector<std::uint64_t>> inter;
  /// Intra-program traffic (empty to ignore; data-aware ignores anyway).
  std::vector<std::vector<double>> sim_intra;
  std::vector<std::vector<double>> analytics_intra;
};

struct PlacementResult {
  std::vector<long> sim_core;        // global core id per simulation rank
  std::vector<long> analytics_core;  // per analytics rank
  int nodes_used = 0;
  PlacementKind kind = PlacementKind::kHelperCore;
  double cost = 0;               // mapper objective value
  double inter_node_bytes = 0;   // inter-program bytes crossing nodes
  double intra_node_bytes = 0;   // inter-program bytes staying on-node
  /// Topology-aware only: NUMA domain (per sim rank) where FlexIO pins its
  /// shared-memory queues and buffer pool -- always the writer's domain
  /// (paper Section III.B.3 default policy).
  std::vector<int> buffer_numa_domain;
};

/// Run the policy. The number of nodes is the fewest that hold all
/// processes (resource binding packs; separate staging nodes emerge when
/// the partitioner keeps the programs apart).
StatusOr<PlacementResult> place(const PlacementRequest& request);

}  // namespace flexio::placement
