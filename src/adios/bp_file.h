// BP-like self-describing file engine (ADIOS file mode).
//
// FlexIO's file mode exists for backwards compatibility and for seamlessly
// switching analytics offline (paper Section II.B). Layout mirrors ADIOS
// BP's spirit without copying its bytes:
//   <dir>/<stream>.bp            -- stream metadata (writer count, group)
//   <dir>/<stream>.bp.d/<r>.bp   -- one subfile per writer rank
// Each subfile is a sequence of step frames, every frame holding the step
// id and the self-describing variables (VarMeta + payload) that rank wrote.
// Readers index subfiles on open and serve block reads or global-array
// selections (reassembled with adios::copy_region).
#pragma once

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adios/var.h"
#include "util/status.h"

namespace flexio::adios {

class BpWriter {
 public:
  /// Create the subfile for `rank`. Rank 0 also writes the stream metadata
  /// file. `dir` must exist or be creatable.
  static StatusOr<std::unique_ptr<BpWriter>> create(const std::string& dir,
                                                    const std::string& stream,
                                                    int rank, int num_writers);
  ~BpWriter();

  /// Step ids must be strictly increasing.
  Status begin_step(StepId step);
  /// Buffer one variable (meta validated; payload size must match meta).
  Status write(const VarMeta& meta, ByteView payload);
  /// Flush the buffered step frame to the subfile.
  Status end_step();
  /// Finalize (writes the end marker). Idempotent.
  Status close();

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  BpWriter() = default;

  std::ofstream out_;
  serial::BufWriter step_buffer_;
  bool in_step_ = false;
  bool closed_ = false;
  StepId current_step_ = -1;
  StepId last_step_ = -1;
  std::uint64_t step_var_count_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Where one variable block lives inside a subfile.
struct BpBlockRef {
  int writer_rank = 0;
  StepId step = 0;
  VarMeta meta;
  std::uint64_t payload_offset = 0;  // byte offset within the subfile
  std::uint64_t payload_bytes = 0;
};

class BpReader {
 public:
  /// Open a finished stream (all writers closed). Scans and indexes every
  /// subfile.
  static StatusOr<std::unique_ptr<BpReader>> open(const std::string& dir,
                                                  const std::string& stream);

  int num_writers() const { return num_writers_; }

  /// Steps present (sorted). Writers are expected to advance uniformly;
  /// the union is returned.
  std::vector<StepId> steps() const;

  /// All blocks of `name` at `step`, across writers.
  StatusOr<std::vector<BpBlockRef>> inquire(StepId step,
                                            const std::string& name) const;

  /// Every block a given writer rank wrote at `step` (process-group reads
  /// in offline mode). Empty when that writer wrote nothing.
  std::vector<BpBlockRef> blocks_for_writer(StepId step, int writer_rank) const;

  /// Read one block's raw payload.
  Status read_block(const BpBlockRef& ref, MutableByteView out);

  /// Read a selection of a global array at `step` into `dst` (dense
  /// row-major buffer of the selection). Fails unless the union of writer
  /// blocks covers the selection.
  Status read_global(StepId step, const std::string& name, const Box& selection,
                     MutableByteView dst);

 private:
  BpReader() = default;
  Status index_subfile(const std::string& path, int rank);

  std::string dir_;
  std::string stream_;
  int num_writers_ = 0;
  std::vector<std::string> subfile_paths_;
  // (step, var name) -> blocks across writers.
  std::map<std::pair<StepId, std::string>, std::vector<BpBlockRef>> index_;
};

/// Path helpers shared with the FlexIO runtime's offline mode.
std::string bp_metadata_path(const std::string& dir, const std::string& stream);
std::string bp_subfile_path(const std::string& dir, const std::string& stream,
                            int rank);

}  // namespace flexio::adios
