// Section IV.B.1: tuning S3D's data movement.
//
// The paper cuts the simulation-visible data-movement time from 1.2 s to
// 0.053 s on Titan (1K cores) by combining CACHING_ALL (skip the
// per-variable handshakes), batching (aggregate the 22 species arrays into
// one message -- "both handshaking and data messages to be aggregated"),
// and asynchronous writes. This harness does three things per tuning
// level:
//  1. runs the *real* FlexIO data plane (writer/reader rank threads moving
//     the 22 arrays, ~1.7 MB per writer per step) and reports the median
//     writer-visible end_step time on this host;
//  2. reports the protocol counters that prove the mechanism (handshake
//     exchanges performed/skipped, data messages per step);
//  3. projects the simulation-visible time onto Titan at 1K cores with the
//     calibrated cost model (collective handshake cost, synchronous
//     drain, asynchronous residue), which reproduces the paper's ~20x.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/s3d.h"
#include "bench/report.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/metrics.h"

namespace {

using namespace flexio;

struct TuningResult {
  double median_visible_ms = 0;
  std::uint64_t handshakes_performed = 0;
  std::uint64_t handshakes_skipped = 0;
  double msgs_per_step = 0;
};

TuningResult run_config(const std::string& stream_name, const char* params,
                        int steps) {
  Runtime rt;
  constexpr int kWriters = 4;
  Program sim("sim", kWriters);
  Program viz("viz", 1);
  xml::MethodConfig method;
  method.method = "FLEXIO";
  method.timeout_ms = 30000;
  FLEXIO_CHECK(xml::apply_method_params(params, &method).is_ok());

  // ~1.7 MB of species data per writer per step (paper profile).
  const adios::Dims global{22, 44, static_cast<std::uint64_t>(10 * kWriters)};
  TuningResult result;

  auto writer_fn = [&](int rank) {
    StreamSpec spec;
    spec.stream = stream_name;
    spec.endpoint = EndpointSpec{&sim, rank, evpath::Location{0, rank}};
    spec.method = method;
    auto w = rt.open_writer(spec);
    FLEXIO_CHECK(w.is_ok());
    apps::S3dRank s3d(global, {1, 1, kWriters}, rank);
    std::vector<double> visible;
    for (int step = 0; step < steps; ++step) {
      FLEXIO_CHECK(w.value()->begin_step(step).is_ok());
      for (int s = 0; s < apps::kS3dSpecies; ++s) {
        FLEXIO_CHECK(
            w.value()
                ->write(s3d.species_meta(s),
                        as_bytes_view(std::span<const double>(s3d.species(s))))
                .is_ok());
      }
      const auto t0 = std::chrono::steady_clock::now();
      FLEXIO_CHECK(w.value()->end_step().is_ok());
      const auto t1 = std::chrono::steady_clock::now();
      if (rank == 0 && step > 0) {  // skip the cold first step
        visible.push_back(std::chrono::duration<double>(t1 - t0).count());
      }
    }
    FLEXIO_CHECK(w.value()->close().is_ok());
    if (rank == 0) {
      std::sort(visible.begin(), visible.end());
      result.median_visible_ms = visible[visible.size() / 2] * 1e3;
      result.handshakes_performed =
          w.value()->monitor().count("handshake.performed");
      result.handshakes_skipped =
          w.value()->monitor().count("handshake.skipped");
      result.msgs_per_step =
          static_cast<double>(w.value()->monitor().count("msgs.sent")) / steps;
    }
  };

  auto reader_fn = [&] {
    StreamSpec spec;
    spec.stream = stream_name;
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 100}};
    spec.method = method;
    auto r = rt.open_reader(spec);
    FLEXIO_CHECK(r.is_ok());
    std::vector<std::vector<double>> out(apps::kS3dSpecies);
    const adios::Box sel{{0, 0, 0}, global};
    for (auto& v : out) v.resize(sel.elements());
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      FLEXIO_CHECK(step.is_ok());
      for (int s = 0; s < apps::kS3dSpecies; ++s) {
        FLEXIO_CHECK(
            r.value()
                ->schedule_read(apps::S3dRank::species_name(s), sel,
                                MutableByteView(std::as_writable_bytes(
                                    std::span<double>(
                                        out[static_cast<std::size_t>(s)]))))
                .is_ok());
      }
      FLEXIO_CHECK(r.value()->perform_reads().is_ok());
      FLEXIO_CHECK(r.value()->end_step().is_ok());
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] { writer_fn(w); });
  }
  threads.emplace_back(reader_fn);
  for (auto& t : threads) t.join();
  return result;
}

/// Project the simulation-visible movement time onto Titan at 1K cores.
/// Calibrated components: a per-handshake collective cost over 1K ranks
/// (45 ms: gather + coordinator exchange + broadcast), a synchronous-drain
/// term (the writers wait until the staging nodes consumed the 1.7 GB
/// step, bounded by the incast makespan), and the asynchronous residue the
/// paper measures (pool copies + control traffic).
double titan_visible_seconds(bool caching_all, bool batching, bool async) {
  const int vars = apps::kS3dSpecies;
  const double per_handshake = 0.045;
  const double sync_drain = 0.21;
  const double async_residue = 0.050;
  // Batching aggregates both handshaking and data messages (Section II.C).
  const int handshakes = caching_all ? 0 : (batching ? 1 : vars);
  double t = handshakes * per_handshake;
  t += async ? async_residue : sync_drain;
  return t;
}

struct Tuning {
  const char* name;
  const char* params;
  bool caching_all, batching, async;
};

}  // namespace

int main() {
  using namespace flexio;
  metrics::set_enabled(true);  // this harness drives the real data plane
  bench::Report report("tab_s3d_tuning");
  bench::CounterDelta delta;
  const Tuning tunings[] = {
      {"untuned  (caching=none, per-var, sync)",
       "caching=none; batching=no; async=no", false, false, false},
      {"+caching (caching=all,  per-var, sync)",
       "caching=all; batching=no; async=no", true, false, false},
      {"+batching(caching=all,  batched, sync)",
       "caching=all; batching=yes; async=no", true, true, false},
      {"tuned    (caching=all,  batched, async)",
       "caching=all; batching=yes; async=yes", true, true, true},
  };
  std::printf("Section IV.B.1: S3D data-movement tuning\n");
  std::printf("(real data plane: 4 writer ranks x 22 species arrays, "
              "~1.7 MB/rank/step)\n\n");
  std::printf("%-42s %14s %11s %9s %10s %14s\n", "configuration",
              "host med (ms)", "handshakes", "skipped", "msgs/step",
              "Titan model(s)");
  double untuned_model = 0;
  double tuned_model = 0;
  int idx = 0;
  for (const Tuning& tuning : tunings) {
    const std::string stream = "s3dtune" + std::to_string(idx++);
    const TuningResult r = run_config(stream, tuning.params, 12);
    const double model =
        titan_visible_seconds(tuning.caching_all, tuning.batching,
                              tuning.async);
    if (untuned_model == 0) untuned_model = model;
    tuned_model = model;
    std::printf("%-42s %14.3f %11llu %9llu %10.1f %14.3f\n", tuning.name,
                r.median_visible_ms,
                static_cast<unsigned long long>(r.handshakes_performed),
                static_cast<unsigned long long>(r.handshakes_skipped),
                r.msgs_per_step, model);
    report.add_samples(std::string("host_visible/") + tuning.params, "ms", 1,
                       1, {r.median_visible_ms});
    report.add_samples(std::string("titan_model/") + tuning.params, "s", 0, 1,
                       {model});
  }
  std::printf("\nmodeled tuning speedup on Titan: %.1fx  (paper: 1.2 s -> "
              "0.053 s = 22.6x)\n",
              untuned_model / tuned_model);
  delta.drain(&report);
  return report.write().is_ok() ? 0 : 1;
}
