#include "nnti/registration_cache.h"

#include <bit>

#include "util/metrics.h"

namespace flexio::nnti {

namespace {
// Process-wide hit/miss/eviction accounting across every cache instance
// (each RDMA send link owns one); the per-instance stats() stays exact.
metrics::Counter& hit_counter() {
  static metrics::Counter& c = metrics::counter("nnti.regcache.hits");
  return c;
}
metrics::Counter& miss_counter() {
  static metrics::Counter& c = metrics::counter("nnti.regcache.misses");
  return c;
}
metrics::Counter& evict_counter() {
  static metrics::Counter& c = metrics::counter("nnti.regcache.evictions");
  return c;
}
}  // namespace

RegistrationCache::RegistrationCache(Nic* nic, std::size_t capacity_bytes)
    : nic_(nic), capacity_bytes_(capacity_bytes) {
  FLEXIO_CHECK(nic != nullptr);
  FLEXIO_CHECK(capacity_bytes >= kMinClassBytes);
}

RegistrationCache::~RegistrationCache() {
  for (auto& shelf : shelves_) {
    for (FreeEntry& entry : shelf) {
      (void)nic_->unregister_memory(entry.buf.region);
      delete[] entry.buf.data;
    }
  }
}

std::uint32_t RegistrationCache::class_for(std::size_t size) {
  if (size <= kMinClassBytes) return 0;
  const auto rounded = std::bit_ceil(size);
  return static_cast<std::uint32_t>(std::countr_zero(rounded) -
                                    std::countr_zero(kMinClassBytes));
}

std::size_t RegistrationCache::class_capacity(std::uint32_t size_class) {
  return kMinClassBytes << size_class;
}

StatusOr<RegisteredBuffer> RegistrationCache::acquire(std::size_t size) {
  const std::uint32_t cls = class_for(size);
  const std::size_t cap = class_capacity(cls);

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.acquisitions;
  if (cls >= shelves_.size()) shelves_.resize(cls + 1);
  auto& shelf = shelves_[cls];
  if (!shelf.empty()) {
    // Reuse the most recently released buffer of this class (the back of
    // the shelf carries the largest stamp: releases push_back in order).
    RegisteredBuffer buf = shelf.back().buf;
    shelf.pop_back();
    ++stats_.hits;
    // Gate outside the accessor so the disabled fast path stays one
    // load+branch (no static-init guard load).
    if (metrics::enabled()) hit_counter().inc();
    return buf;
  }
  ++stats_.misses;
  if (metrics::enabled()) miss_counter().inc();
  // Over budget: evict least recently used free buffers before growing.
  if (stats_.bytes_held + cap > capacity_bytes_) {
    evict_lru_locked(cap);
  }
  RegisteredBuffer buf;
  buf.data = new std::byte[cap];
  buf.capacity = cap;
  buf.size_class = cls;
  auto region = nic_->register_memory(buf.data, cap);
  if (!region.is_ok()) {
    delete[] buf.data;
    return region.status();
  }
  buf.region = region.value();
  ++stats_.registrations;
  stats_.bytes_held += cap;
  return buf;
}

void RegistrationCache::release(RegisteredBuffer buffer) {
  if (!buffer) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.bytes_held > capacity_bytes_) {
    reclaim_locked(buffer);
    return;
  }
  FLEXIO_CHECK(buffer.size_class < shelves_.size());
  shelves_[buffer.size_class].push_back(FreeEntry{buffer, ++use_clock_});
}

void RegistrationCache::evict_lru_locked(std::size_t needed) {
  while (stats_.bytes_held + needed > capacity_bytes_) {
    // Victim: the free buffer with the globally smallest release stamp.
    // Shelves are stamp-ordered, so only fronts need comparing; the scan
    // is over size classes (a few dozen), not buffers.
    std::vector<FreeEntry>* victim_shelf = nullptr;
    for (auto& shelf : shelves_) {
      if (shelf.empty()) continue;
      if (victim_shelf == nullptr ||
          shelf.front().last_use < victim_shelf->front().last_use) {
        victim_shelf = &shelf;
      }
    }
    if (victim_shelf == nullptr) return;  // nothing free to evict
    reclaim_locked(victim_shelf->front().buf);
    victim_shelf->erase(victim_shelf->begin());
  }
}

void RegistrationCache::reclaim_locked(RegisteredBuffer& buf) {
  (void)nic_->unregister_memory(buf.region);
  delete[] buf.data;
  FLEXIO_CHECK(stats_.bytes_held >= buf.capacity);
  stats_.bytes_held -= buf.capacity;
  ++stats_.reclamations;
  if (metrics::enabled()) evict_counter().inc();
  buf.data = nullptr;
}

RegistrationCacheStats RegistrationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace flexio::nnti
