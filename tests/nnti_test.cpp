// Tests for the NNTI-like RDMA layer: fabric, one-sided ops, message
// queues, registration cache, fault injection, and the cost model.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "nnti/cost_model.h"
#include "nnti/nnti.h"
#include "nnti/registration_cache.h"
#include "util/metrics.h"

namespace flexio::nnti {
namespace {

using namespace std::chrono_literals;

ByteView bytes_of(const std::string& s) {
  return ByteView(reinterpret_cast<const std::byte*>(s.data()), s.size());
}

class NntiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto a = fabric_.create_nic("a");
    auto b = fabric_.create_nic("b");
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    a_ = a.value();
    b_ = b.value();
  }

  Fabric fabric_;
  std::shared_ptr<Nic> a_;
  std::shared_ptr<Nic> b_;
};

TEST_F(NntiTest, ConnectFindsPeers) {
  EXPECT_TRUE(fabric_.connect("a", "b").is_ok());
  EXPECT_EQ(fabric_.connect("a", "ghost").code(), ErrorCode::kNotFound);
}

TEST_F(NntiTest, DuplicateNicNameRejected) {
  EXPECT_EQ(fabric_.create_nic("a").status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(NntiTest, NicNameFreedAfterDestruction) {
  a_.reset();
  auto again = fabric_.create_nic("a");
  EXPECT_TRUE(again.is_ok());
}

TEST_F(NntiTest, SmallMessageQueueRoundTrip) {
  ASSERT_TRUE(a_->put_message("b", bytes_of("hello")).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(b_->poll_message(&out, 1s).is_ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.data()), out.size()),
            "hello");
  EXPECT_EQ(a_->stats().messages_sent, 1u);
  EXPECT_EQ(b_->stats().messages_received, 1u);
}

TEST_F(NntiTest, PollTimesOutWhenEmpty) {
  std::vector<std::byte> out;
  EXPECT_EQ(b_->poll_message(&out, 5ms).code(), ErrorCode::kTimeout);
}

TEST_F(NntiTest, QueueDepthEnforced) {
  auto tiny = fabric_.create_nic("tiny", 2);
  ASSERT_TRUE(tiny.is_ok());
  EXPECT_TRUE(a_->put_message("tiny", bytes_of("1")).is_ok());
  EXPECT_TRUE(a_->put_message("tiny", bytes_of("2")).is_ok());
  EXPECT_EQ(a_->put_message("tiny", bytes_of("3")).code(),
            ErrorCode::kResourceExhausted);
}

TEST_F(NntiTest, GetReadsRemoteRegisteredMemory) {
  std::vector<std::byte> remote(64);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>(i);
  }
  auto region = b_->register_memory(remote.data(), remote.size());
  ASSERT_TRUE(region.is_ok());

  std::vector<std::byte> local(16);
  ASSERT_TRUE(
      a_->get("b", region.value(), 8, MutableByteView(local)).is_ok());
  EXPECT_EQ(local[0], std::byte{8});
  EXPECT_EQ(local[15], std::byte{23});
  EXPECT_EQ(a_->stats().bytes_get, 16u);
}

TEST_F(NntiTest, PutWritesRemoteRegisteredMemory) {
  std::vector<std::byte> remote(32, std::byte{0});
  auto region = b_->register_memory(remote.data(), remote.size());
  ASSERT_TRUE(region.is_ok());
  const std::byte src[4] = {std::byte{9}, std::byte{8}, std::byte{7},
                            std::byte{6}};
  ASSERT_TRUE(a_->put("b", ByteView(src), region.value(), 4).is_ok());
  EXPECT_EQ(remote[4], std::byte{9});
  EXPECT_EQ(remote[7], std::byte{6});
}

TEST_F(NntiTest, GetRejectsUnregisteredOrOutOfBounds) {
  std::vector<std::byte> remote(32);
  std::vector<std::byte> local(16);
  MemRegion bogus{999, 32};
  EXPECT_EQ(a_->get("b", bogus, 0, MutableByteView(local)).code(),
            ErrorCode::kNotFound);

  auto region = b_->register_memory(remote.data(), remote.size());
  ASSERT_TRUE(region.is_ok());
  EXPECT_EQ(a_->get("b", region.value(), 20, MutableByteView(local)).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(NntiTest, UnregisterInvalidatesRegion) {
  std::vector<std::byte> remote(32);
  auto region = b_->register_memory(remote.data(), remote.size());
  ASSERT_TRUE(region.is_ok());
  ASSERT_TRUE(b_->unregister_memory(region.value()).is_ok());
  EXPECT_EQ(b_->unregister_memory(region.value()).code(),
            ErrorCode::kNotFound);
  std::vector<std::byte> local(8);
  EXPECT_EQ(a_->get("b", region.value(), 0, MutableByteView(local)).code(),
            ErrorCode::kNotFound);
}

TEST_F(NntiTest, RegisterRejectsEmpty) {
  EXPECT_FALSE(a_->register_memory(nullptr, 16).is_ok());
  int x = 0;
  EXPECT_FALSE(a_->register_memory(&x, 0).is_ok());
}

TEST_F(NntiTest, OperationsOnDeadPeerFail) {
  std::vector<std::byte> remote(32);
  auto region = b_->register_memory(remote.data(), remote.size());
  ASSERT_TRUE(region.is_ok());
  const MemRegion saved = region.value();
  b_.reset();
  std::vector<std::byte> local(8);
  EXPECT_EQ(a_->get("b", saved, 0, MutableByteView(local)).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(a_->put_message("b", bytes_of("x")).code(),
            ErrorCode::kUnavailable);
}

TEST_F(NntiTest, FaultInjectorInterceptsOps) {
  int failures_left = 2;
  fabric_.set_fault_injector(
      [&failures_left](Op op, const std::string&, const std::string&) {
        if (op == Op::kGet && failures_left > 0) {
          --failures_left;
          return make_error(ErrorCode::kUnavailable, "injected");
        }
        return Status::ok();
      });
  std::vector<std::byte> remote(32);
  auto region = b_->register_memory(remote.data(), remote.size());
  ASSERT_TRUE(region.is_ok());
  std::vector<std::byte> local(8);
  // Two injected failures, then success: the timeout-and-retry pattern.
  EXPECT_FALSE(a_->get("b", region.value(), 0, MutableByteView(local)).is_ok());
  EXPECT_FALSE(a_->get("b", region.value(), 0, MutableByteView(local)).is_ok());
  EXPECT_TRUE(a_->get("b", region.value(), 0, MutableByteView(local)).is_ok());
  fabric_.set_fault_injector(nullptr);
}

TEST_F(NntiTest, CrossThreadMessaging) {
  constexpr int kCount = 500;
  std::thread sender([&] {
    for (int i = 0; i < kCount; ++i) {
      std::vector<std::byte> msg(sizeof i);
      std::memcpy(msg.data(), &i, sizeof i);
      // The queue may momentarily fill; retry as the runtime would.
      while (a_->put_message("b", ByteView(msg)).code() ==
             ErrorCode::kResourceExhausted) {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::byte> out;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(b_->poll_message(&out, 5s).is_ok());
    int v = -1;
    std::memcpy(&v, out.data(), sizeof v);
    ASSERT_EQ(v, i);  // single sender: order preserved
  }
  sender.join();
}

TEST_F(NntiTest, ConcurrentOneSidedOpsOnOneRegion) {
  // Several "nodes" Get from and Put into disjoint slices of one registered
  // region concurrently; contents must end up exactly as written.
  std::vector<std::byte> remote(1024, std::byte{0});
  auto region = b_->register_memory(remote.data(), remote.size());
  ASSERT_TRUE(region.is_ok());
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<Nic>> nics;
  for (int t = 0; t < kThreads; ++t) {
    auto nic = fabric_.create_nic("peer" + std::to_string(t));
    ASSERT_TRUE(nic.is_ok());
    nics.push_back(nic.value());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> mine(256, std::byte{static_cast<unsigned char>(t + 1)});
      for (int iter = 0; iter < 50; ++iter) {
        ASSERT_TRUE(nics[static_cast<std::size_t>(t)]
                        ->put("b", ByteView(mine), region.value(),
                              static_cast<std::uint64_t>(t) * 256)
                        .is_ok());
        std::vector<std::byte> readback(256);
        ASSERT_TRUE(nics[static_cast<std::size_t>(t)]
                        ->get("b", region.value(),
                              static_cast<std::uint64_t>(t) * 256,
                              MutableByteView(readback))
                        .is_ok());
        ASSERT_EQ(readback, mine);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(remote[static_cast<std::size_t>(t) * 256],
              std::byte{static_cast<unsigned char>(t + 1)});
  }
}

TEST(RegistrationCacheTest, ReusesRegisteredBuffers) {
  Fabric fabric;
  auto nic = fabric.create_nic("n").value();
  RegistrationCache cache(nic.get(), 1 << 20);
  auto a = cache.acquire(1000);
  ASSERT_TRUE(a.is_ok());
  const std::uint64_t key = a.value().region.key;
  cache.release(a.value());
  auto b = cache.acquire(1024);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value().region.key, key);  // same registration reused
  const auto s = cache.stats();
  EXPECT_EQ(s.registrations, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(nic->stats().registrations, 1u);
  cache.release(b.value());
}

TEST(RegistrationCacheTest, ReclaimsOverThreshold) {
  Fabric fabric;
  auto nic = fabric.create_nic("n").value();
  RegistrationCache cache(nic.get(), 1024);
  auto a = cache.acquire(1024);
  auto b = cache.acquire(1024);  // drives held bytes to 2x threshold
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  cache.release(b.value());  // over threshold -> reclaimed
  EXPECT_GE(cache.stats().reclamations, 1u);
  EXPECT_GE(nic->stats().deregistrations, 1u);
  cache.release(a.value());
}

TEST(RegistrationCacheTest, BuffersAreRemotelyReadable) {
  Fabric fabric;
  auto server = fabric.create_nic("server").value();
  auto client = fabric.create_nic("client").value();
  RegistrationCache cache(server.get(), 1 << 20);
  auto buf = cache.acquire(256);
  ASSERT_TRUE(buf.is_ok());
  std::memcpy(buf.value().data, "rdma-data", 9);
  std::vector<std::byte> local(9);
  ASSERT_TRUE(client
                  ->get("server", buf.value().region, 0,
                        MutableByteView(local))
                  .is_ok());
  EXPECT_EQ(std::memcmp(local.data(), "rdma-data", 9), 0);
  cache.release(buf.value());
}

TEST(RegistrationCacheTest, SizeClasses) {
  EXPECT_EQ(RegistrationCache::class_for(1), 0u);
  EXPECT_EQ(RegistrationCache::class_for(256), 0u);
  EXPECT_EQ(RegistrationCache::class_for(257), 1u);
  EXPECT_EQ(RegistrationCache::class_capacity(2), 1024u);
}

TEST(RegistrationCacheTest, MruReuseWithinClass) {
  Fabric fabric;
  auto nic = fabric.create_nic("n").value();
  RegistrationCache cache(nic.get(), 1 << 20);
  auto a = cache.acquire(256);
  auto b = cache.acquire(256);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  const std::uint64_t key_a = a.value().region.key;
  const std::uint64_t key_b = b.value().region.key;
  cache.release(a.value());
  cache.release(b.value());
  // b was released last: it is the warmest buffer and must come back first.
  auto c = cache.acquire(256);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().region.key, key_b);
  auto d = cache.acquire(256);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().region.key, key_a);
  cache.release(c.value());
  cache.release(d.value());
}

TEST(RegistrationCacheTest, FillPastCapacityEvictsLeastRecentlyUsed) {
  Fabric fabric;
  auto nic = fabric.create_nic("n").value();
  // Room for four 256-byte-class buffers.
  RegistrationCache cache(nic.get(), 1024);
  std::vector<RegisteredBuffer> bufs;
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 4; ++i) {
    auto b = cache.acquire(256);
    ASSERT_TRUE(b.is_ok());
    keys.push_back(b.value().region.key);
    bufs.push_back(b.value());
  }
  for (RegisteredBuffer& b : bufs) cache.release(b);  // stamps 1..4

  // A 512-class acquire does not fit: the two oldest free buffers (the
  // first two released) are deregistered to make room.
  auto big = cache.acquire(512);
  ASSERT_TRUE(big.is_ok());
  const auto s = cache.stats();
  EXPECT_EQ(s.reclamations, 2u);
  EXPECT_EQ(nic->stats().deregistrations, 2u);
  EXPECT_EQ(s.bytes_held, 1024u);  // 2x256 free + 512 in use

  // The survivors are the most recently released pair, MRU first.
  auto x = cache.acquire(256);
  auto y = cache.acquire(256);
  ASSERT_TRUE(x.is_ok());
  ASSERT_TRUE(y.is_ok());
  EXPECT_EQ(x.value().region.key, keys[3]);
  EXPECT_EQ(y.value().region.key, keys[2]);
  cache.release(x.value());
  cache.release(y.value());
  cache.release(big.value());
}

TEST(RegistrationCacheTest, LruVictimChosenAcrossSizeClasses) {
  Fabric fabric;
  auto nic = fabric.create_nic("n").value();
  RegistrationCache cache(nic.get(), 1600);
  auto small = cache.acquire(256);   // cap 256
  auto large = cache.acquire(1000);  // cap 1024
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  const std::uint64_t large_key = large.value().region.key;
  cache.release(small.value());  // stamp 1: globally least recently used
  cache.release(large.value());  // stamp 2

  // 512-class acquire: held 1280 + 512 > 1600, so exactly one eviction is
  // needed -- and it must take the small buffer (older stamp), not the
  // large one (which would free more bytes but is warmer).
  auto mid = cache.acquire(512);
  ASSERT_TRUE(mid.is_ok());
  EXPECT_EQ(cache.stats().reclamations, 1u);
  auto back = cache.acquire(1000);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().region.key, large_key);  // survived eviction
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.release(mid.value());
  cache.release(back.value());
}

TEST(RegistrationCacheTest, HitMissCountersBalance) {
  Fabric fabric;
  auto nic = fabric.create_nic("n").value();
  RegistrationCache cache(nic.get(), 1 << 20);
  auto a = cache.acquire(256);  // miss
  ASSERT_TRUE(a.is_ok());
  cache.release(a.value());
  auto b = cache.acquire(256);  // hit
  ASSERT_TRUE(b.is_ok());
  auto c = cache.acquire(256);  // miss (only buffer is in use)
  ASSERT_TRUE(c.is_ok());
  auto d = cache.acquire(4096);  // miss (new class)
  ASSERT_TRUE(d.is_ok());
  const auto s = cache.stats();
  EXPECT_EQ(s.acquisitions, 4u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits + s.misses, s.acquisitions);
  EXPECT_EQ(s.registrations, 3u);
  cache.release(b.value());
  cache.release(c.value());
  cache.release(d.value());
}

TEST(RegistrationCacheTest, ReRegisteredBufferAfterEvictionIsUsable) {
  Fabric fabric;
  auto server = fabric.create_nic("server").value();
  auto client = fabric.create_nic("client").value();
  RegistrationCache cache(server.get(), 512);
  auto a = cache.acquire(256);
  ASSERT_TRUE(a.is_ok());
  cache.release(a.value());
  // This acquire evicts the freed 256-class buffer to fit under threshold.
  auto big = cache.acquire(512);
  ASSERT_TRUE(big.is_ok());
  EXPECT_EQ(cache.stats().reclamations, 1u);
  EXPECT_EQ(server->stats().deregistrations, 1u);
  cache.release(big.value());

  // Acquiring the evicted class again registers fresh memory; the new
  // region must be fully usable for remote one-sided reads.
  auto b = cache.acquire(256);
  ASSERT_TRUE(b.is_ok());
  std::memcpy(b.value().data, "post-evict", 10);
  std::vector<std::byte> local(10);
  ASSERT_TRUE(
      client->get("server", b.value().region, 0, MutableByteView(local))
          .is_ok());
  EXPECT_EQ(std::memcmp(local.data(), "post-evict", 10), 0);
  cache.release(b.value());
}

TEST(RegistrationCacheTest, GlobalMetricsMirrorInstanceStats) {
  metrics::set_enabled(true);
  metrics::reset_all();
  {
    Fabric fabric;
    auto nic = fabric.create_nic("n").value();
    RegistrationCache cache(nic.get(), 1 << 20);
    auto a = cache.acquire(256);  // miss
    ASSERT_TRUE(a.is_ok());
    cache.release(a.value());
    auto b = cache.acquire(256);  // hit
    ASSERT_TRUE(b.is_ok());
    cache.release(b.value());
  }
  const auto snap = metrics::snapshot_all();
  EXPECT_EQ(snap.at("nnti.regcache.hits").counter, 1u);
  EXPECT_EQ(snap.at("nnti.regcache.misses").counter, 1u);
  metrics::set_enabled(false);
}

TEST(CostModelTest, DynamicRegistrationSlowerEverywhere) {
  const RdmaCostModel model(sim::titan());
  for (std::size_t bytes = 1 << 10; bytes <= 64u << 20; bytes <<= 1) {
    EXPECT_LT(model.bandwidth(bytes, true), model.bandwidth(bytes, false))
        << bytes;
  }
}

TEST(CostModelTest, Figure4ShapeGapShrinksWithSize) {
  // Paper Figure 4: the static/dynamic gap is large for small-mid messages
  // and the curves converge (while never crossing) at large sizes.
  const RdmaCostModel model(sim::titan());
  const double gap_small =
      model.bandwidth(64 << 10, false) / model.bandwidth(64 << 10, true);
  const double gap_large =
      model.bandwidth(64 << 20, false) / model.bandwidth(64 << 20, true);
  EXPECT_GT(gap_small, 2.0);   // several-x penalty at 64 KiB
  EXPECT_LT(gap_large, 1.35);  // near-convergence at 64 MiB
}

TEST(CostModelTest, StaticApproachesPeak) {
  const RdmaCostModel model(sim::titan());
  EXPECT_GT(model.bandwidth(256u << 20, false), 0.95 * model.peak_bandwidth());
}

}  // namespace
}  // namespace flexio::nnti
