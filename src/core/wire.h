// Control- and data-plane wire messages of the FlexIO stream protocol.
//
// The stream protocol (paper Section II.C) exchanges:
//  * open request/reply between the two coordinators (connection setup via
//    the directory server),
//  * StepAnnounce (writer-side distributions, Steps 1.s + 2),
//  * ReadRequest (reader-side selections, Steps 1.a + 2),
//  * Data messages carrying packed strides (Step 4), optionally batched,
//  * plug-in installation, shipped monitoring records, and stream close.
// All messages are length-checked on decode; a corrupt frame yields an
// error instead of undefined behaviour.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "adios/var.h"
#include "serial/buffer.h"
#include "util/status.h"

namespace flexio::wire {

enum class MsgType : std::uint8_t {
  kOpenRequest = 1,
  kOpenReply = 2,
  kStepAnnounce = 3,
  kReadRequest = 4,
  kData = 5,
  kClose = 6,
  kPluginInstall = 7,
  kMonitorReport = 8,
  kHeartbeat = 9,
  kMembershipUpdate = 10,
};

/// Compact trace context stamped into data-plane and handshake frames so
/// reader-side spans can be stitched under the writer step that produced
/// them (and vice versa). Encoded as a *versioned trailer* after the
/// message's regular fields: old frames simply end where the trailer would
/// begin, so decoders treat "no bytes left" as "no context" and old-format
/// frames keep parsing (pinned by tests/core_test.cpp).
struct TraceContext {
  std::uint64_t stream_id = 0;  // stream_id_hash of the stream name
  StepId step = 0;              // step the frame belongs to
  std::uint64_t span_id = 0;    // sender's trace span (0 = tracing off)
  std::uint64_t send_ns = 0;    // sender's clock at encode time
};

/// Stable 32-bit FNV-1a hash of a stream name, never 0. Kept to 32 bits so
/// the value survives a round-trip through JSON doubles in trace exports.
std::uint64_t stream_id_hash(std::string_view stream);

/// Reader coordinator -> writer coordinator when opening a stream.
struct OpenRequest {
  std::string reader_program;
  int reader_size = 0;
};

/// Writer coordinator -> reader coordinator reply: stream shape and the
/// transport tuning the writer side was configured with (both sides must
/// agree on caching/batching, so the writer's config wins).
struct OpenReply {
  std::string writer_program;
  int writer_size = 0;
  std::uint8_t caching = 0;   // xml::CachingLevel
  bool batching = false;
  bool async_writes = false;
};

/// One writer rank's declared variable (with inline payload for scalars,
/// which ride the metadata channel like ADIOS attributes).
struct BlockInfo {
  int writer_rank = 0;
  adios::VarMeta meta;
  std::vector<std::byte> scalar_payload;  // non-empty only for scalars
};

/// Writer coordinator -> reader coordinator: everything written this step.
struct StepAnnounce {
  StepId step = 0;
  std::vector<BlockInfo> blocks;
  std::optional<TraceContext> trace;  // versioned trailer, absent on old frames
  /// Membership epoch the writer planned this step against (trailer v2,
  /// absent on pre-membership frames and when liveness is disabled). A
  /// reader whose cached handshake was exchanged under a different epoch
  /// must re-exchange.
  std::optional<std::uint64_t> membership_epoch;
};

/// One reader rank's selection of a global array.
struct SelectionInfo {
  int reader_rank = 0;
  std::string var;
  adios::Box box;
};

/// One reader rank's request for a writer rank's whole process group.
struct PgRequestInfo {
  int reader_rank = 0;
  int writer_rank = 0;
};

/// Reader -> writer: deploy a Data Conditioning plug-in (mobile codelet
/// source) against a variable, executing at the chosen side. Plug-ins ride
/// inside the ReadRequest so every writer rank installs them at a
/// deterministic point of its SPMD schedule.
struct PluginInstall {
  std::string var;
  std::string source;       // CoD-mini source text
  bool run_at_writer = true;
};

/// Reader coordinator -> writer coordinator: all reader selections.
struct ReadRequest {
  StepId step = 0;
  std::vector<SelectionInfo> selections;
  std::vector<PgRequestInfo> pg_requests;
  std::vector<PluginInstall> plugins;
  std::optional<TraceContext> trace;  // versioned trailer, absent on old frames
  /// Echo of the announce's membership epoch (trailer v2): the collective
  /// agreement point -- the writer adopts it as the epoch its cached plan
  /// is valid for.
  std::optional<std::uint64_t> membership_epoch;
};

/// One transferred piece: a region of a global array (region == the
/// overlap, payload is its dense pack) or a whole local-array block
/// (process-group pattern; region == meta.block).
///
/// Payload ownership is dual: decode always materializes owned bytes in
/// `payload`, but on the send path a whole-block piece may instead carry a
/// `borrowed` view of the writer's buffered block -- the bytes then flow
/// straight from that buffer into the transport via encode_data_iov with
/// zero intermediate copies. Use bytes() to read regardless of mode.
struct DataPiece {
  adios::VarMeta meta;
  adios::Box region;
  std::vector<std::byte> payload;  // owned (decode path, packed regions)
  ByteView borrowed;               // borrowed (send path, whole blocks)

  /// The payload bytes, whichever side owns them.
  ByteView bytes() const {
    return borrowed.empty() ? ByteView(payload) : borrowed;
  }

  /// Copy a borrowed payload into owned storage (needed before handing the
  /// piece to code that mutates or outlives the borrowed buffer).
  void materialize() {
    if (borrowed.empty()) return;
    payload.assign(borrowed.begin(), borrowed.end());
    borrowed = {};
  }
};

/// Writer rank -> reader rank. One piece per message without batching;
/// all pieces of the (writer, reader, step) triple in one message with it.
struct DataMsg {
  StepId step = 0;
  int writer_rank = 0;
  std::vector<DataPiece> pieces;
  std::optional<TraceContext> trace;  // versioned trailer, absent on old frames
};

/// Writer coordinator -> reader coordinator at close: aggregated writer-
/// side monitoring (Section II.G "transferred to the analytics side").
struct MonitorReport {
  std::uint64_t steps = 0;
  std::uint64_t bytes_sent = 0;
  double pack_seconds = 0;
  double handshake_seconds = 0;
  double send_seconds = 0;
  std::uint64_t handshakes_performed = 0;
  std::uint64_t handshakes_skipped = 0;
  // Per-phase step attribution (wire trailer v1; all-zero when decoding an
  // old-format frame). Writer fills pack/enqueue, reader fills
  // transfer/unpack/total; each is a sum over phase_steps steps.
  std::uint64_t pack_ns = 0;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t transfer_ns = 0;
  std::uint64_t unpack_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t phase_steps = 0;
};

/// One member record inside a MembershipUpdate. `state` mirrors
/// evpath::MemberState (0 alive, 1 left, 2 dead) as a raw byte so the wire
/// layer stays decoupled from the directory's types.
struct MemberInfo {
  int rank = 0;
  std::string contact;
  std::uint64_t incarnation = 0;
  std::uint8_t state = 0;
  std::uint64_t join_epoch = 0;
};

/// Writer coordinator -> reader coordinator, sent immediately before a
/// StepAnnounce whose epoch differs from the previous step's: the
/// membership view behind the new epoch, so the reader coordinator can
/// admit joiners and excise the departed without consulting the directory.
struct MembershipUpdate {
  std::string stream;
  std::uint64_t epoch = 0;
  std::vector<MemberInfo> members;
  std::optional<TraceContext> trace;
};

/// Reader rank -> directory: liveness beat for one member incarnation.
/// Travels as an encoded frame (decoded by the runtime's delivery adapter)
/// so the directory can move out of process without a protocol change.
struct Heartbeat {
  std::string stream;
  int rank = 0;
  std::uint64_t incarnation = 0;
  std::uint64_t send_ns = 0;
  std::optional<TraceContext> trace;
  /// Telemetry piggyback (stats trailer, v3): the sender's program name
  /// and one "flexio-stats-v1" delta line since its previous beat. Both
  /// empty when telemetry publishing is off; pre-v3 frames decode with
  /// both empty (the trailer is skipped by old readers and absent in old
  /// frames). The directory folds these into its cluster view.
  std::string program;
  std::string stats;
};

/// Peek the type tag of an encoded message.
StatusOr<MsgType> peek_type(ByteView raw);

/// Multiplexing frame prefix (shared-link mode): `tag + varint stream_id`
/// prepended to an ordinary protocol frame so many streams can share one
/// link and the receiving registry can route each frame to its stream's
/// inbox. The tag sits outside the MsgType range [1, 10], so a legacy
/// decoder fed a prefixed frame fails loudly in peek_type instead of
/// misparsing it -- and decode_mux treats a frame that starts with a valid
/// MsgType tag as an unprefixed legacy frame (stream_id 0), so
/// pre-multiplexing frames keep parsing (pinned by tests/multiplex_test.cpp).
inline constexpr std::uint8_t kMuxPrefixTag = 0xF5;

/// A demultiplexed frame: the routing key and a view of the inner protocol
/// frame (aliasing the input buffer; zero copies).
struct MuxFrame {
  std::uint64_t stream_id = 0;  // 0 = legacy frame without a prefix
  ByteView inner;
};

/// The prefix bytes for one stream: send them as the first iov fragment (or
/// prepend them) ahead of any encoded protocol frame. stream_id must be
/// non-zero (stream_id_hash never returns 0).
std::vector<std::byte> encode_mux_prefix(std::uint64_t stream_id);

/// Split a possibly-prefixed frame into {stream_id, inner}. Legacy frames
/// (no prefix) pass through with stream_id 0 and inner == raw.
StatusOr<MuxFrame> decode_mux(ByteView raw);

std::vector<std::byte> encode(const OpenRequest& m);
std::vector<std::byte> encode(const OpenReply& m);
std::vector<std::byte> encode(const StepAnnounce& m);
std::vector<std::byte> encode(const ReadRequest& m);
std::vector<std::byte> encode(const DataMsg& m);
/// Scatter-gather encode of a data message: the returned IovMessage frames
/// the exact bytes of encode(m) as owned header slices interleaved with
/// borrowed payload views, so transports can gather piece payloads straight
/// from the writer's buffers without an intermediate flat copy. The pieces'
/// payload buffers must outlive the message.
serial::IovMessage encode_data_iov(const DataMsg& m);
std::vector<std::byte> encode(const PluginInstall& m);
std::vector<std::byte> encode(const MonitorReport& m);
std::vector<std::byte> encode(const MembershipUpdate& m);
std::vector<std::byte> encode(const Heartbeat& m);
/// Close carries the final step id so readers that cache handshakes can
/// tell whether data for earlier steps is still in flight on other links.
std::vector<std::byte> encode_close(StepId last_step);
StatusOr<StepId> decode_close(ByteView raw);

StatusOr<OpenRequest> decode_open_request(ByteView raw);
StatusOr<OpenReply> decode_open_reply(ByteView raw);
StatusOr<StepAnnounce> decode_step_announce(ByteView raw);
StatusOr<ReadRequest> decode_read_request(ByteView raw);
StatusOr<DataMsg> decode_data(ByteView raw);
StatusOr<PluginInstall> decode_plugin_install(ByteView raw);
StatusOr<MonitorReport> decode_monitor_report(ByteView raw);
StatusOr<MembershipUpdate> decode_membership_update(ByteView raw);
StatusOr<Heartbeat> decode_heartbeat(ByteView raw);

}  // namespace flexio::wire
