#include "adios/bp_file.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <set>

#include "util/strings.h"

namespace flexio::adios {

namespace {
constexpr char kMagic[4] = {'F', 'X', 'B', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kStepMarker = 1;
constexpr std::uint8_t kEndMarker = 0;

std::vector<std::byte> read_all(std::ifstream& in) {
  std::vector<char> chars((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::vector<std::byte> out(chars.size());
  std::memcpy(out.data(), chars.data(), chars.size());
  return out;
}
}  // namespace

std::string bp_metadata_path(const std::string& dir, const std::string& stream) {
  return dir + "/" + stream + ".bp";
}

std::string bp_subfile_path(const std::string& dir, const std::string& stream,
                            int rank) {
  return dir + "/" + stream + ".bp.d/" + std::to_string(rank) + ".bp";
}

StatusOr<std::unique_ptr<BpWriter>> BpWriter::create(const std::string& dir,
                                                     const std::string& stream,
                                                     int rank,
                                                     int num_writers) {
  if (rank < 0 || rank >= num_writers) {
    return make_error(ErrorCode::kInvalidArgument, "bad writer rank");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir + "/" + stream + ".bp.d", ec);
  if (ec) {
    return make_error(ErrorCode::kInternal,
                      "cannot create stream dir: " + ec.message());
  }
  if (rank == 0) {
    std::ofstream meta(bp_metadata_path(dir, stream), std::ios::binary);
    if (!meta) {
      return make_error(ErrorCode::kInternal, "cannot write metadata file");
    }
    serial::BufWriter w;
    w.put_raw(kMagic, sizeof kMagic);
    w.put_u32(kVersion);
    w.put_u32(static_cast<std::uint32_t>(num_writers));
    w.put_string(stream);
    meta.write(reinterpret_cast<const char*>(w.view().data()),
               static_cast<std::streamsize>(w.size()));
  }
  auto writer = std::unique_ptr<BpWriter>(new BpWriter());
  writer->out_.open(bp_subfile_path(dir, stream, rank), std::ios::binary);
  if (!writer->out_) {
    return make_error(ErrorCode::kInternal, "cannot open subfile for rank " +
                                                std::to_string(rank));
  }
  serial::BufWriter header;
  header.put_raw(kMagic, sizeof kMagic);
  header.put_u32(kVersion);
  header.put_u32(static_cast<std::uint32_t>(rank));
  writer->out_.write(reinterpret_cast<const char*>(header.view().data()),
                     static_cast<std::streamsize>(header.size()));
  writer->bytes_written_ += header.size();
  return writer;
}

BpWriter::~BpWriter() { (void)close(); }

Status BpWriter::begin_step(StepId step) {
  if (closed_) {
    return make_error(ErrorCode::kFailedPrecondition, "writer closed");
  }
  if (in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "step already open");
  }
  if (step <= last_step_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "step ids must strictly increase");
  }
  in_step_ = true;
  current_step_ = step;
  step_var_count_ = 0;
  step_buffer_ = serial::BufWriter();
  return Status::ok();
}

Status BpWriter::write(const VarMeta& meta, ByteView payload) {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "write outside step");
  }
  FLEXIO_RETURN_IF_ERROR(meta.validate());
  if (payload.size() != meta.payload_bytes()) {
    return make_error(
        ErrorCode::kInvalidArgument,
        str_format("payload size %zu != %llu implied by metadata of '%s'",
                   payload.size(),
                   static_cast<unsigned long long>(meta.payload_bytes()),
                   meta.name.c_str()));
  }
  meta.encode(&step_buffer_);
  step_buffer_.put_bytes(payload);
  ++step_var_count_;
  return Status::ok();
}

Status BpWriter::end_step() {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "no step open");
  }
  serial::BufWriter frame;
  frame.put_u8(kStepMarker);
  frame.put_i64(current_step_);
  frame.put_varint(step_var_count_);
  out_.write(reinterpret_cast<const char*>(frame.view().data()),
             static_cast<std::streamsize>(frame.size()));
  out_.write(reinterpret_cast<const char*>(step_buffer_.view().data()),
             static_cast<std::streamsize>(step_buffer_.size()));
  out_.flush();
  if (!out_) {
    return make_error(ErrorCode::kInternal, "subfile write failed");
  }
  bytes_written_ += frame.size() + step_buffer_.size();
  last_step_ = current_step_;
  in_step_ = false;
  step_buffer_ = serial::BufWriter();
  return Status::ok();
}

Status BpWriter::close() {
  if (closed_) return Status::ok();
  if (in_step_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "close with an open step");
  }
  closed_ = true;
  const char end = static_cast<char>(kEndMarker);
  out_.write(&end, 1);
  out_.flush();
  ++bytes_written_;
  out_.close();
  return Status::ok();
}

StatusOr<std::unique_ptr<BpReader>> BpReader::open(const std::string& dir,
                                                   const std::string& stream) {
  std::ifstream meta(bp_metadata_path(dir, stream), std::ios::binary);
  if (!meta) {
    return make_error(ErrorCode::kNotFound,
                      "no stream metadata: " + bp_metadata_path(dir, stream));
  }
  std::vector<std::byte> raw = read_all(meta);
  serial::BufReader r{ByteView(raw)};
  char magic[4];
  FLEXIO_RETURN_IF_ERROR(r.get_raw(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return make_error(ErrorCode::kInvalidArgument, "bad metadata magic");
  }
  std::uint32_t version = 0, writers = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_u32(&version));
  if (version != kVersion) {
    return make_error(ErrorCode::kInvalidArgument, "unsupported BP version");
  }
  FLEXIO_RETURN_IF_ERROR(r.get_u32(&writers));
  std::string stream_name;
  FLEXIO_RETURN_IF_ERROR(r.get_string(&stream_name));
  if (stream_name != stream) {
    return make_error(ErrorCode::kInvalidArgument, "stream name mismatch");
  }

  auto reader = std::unique_ptr<BpReader>(new BpReader());
  reader->dir_ = dir;
  reader->stream_ = stream;
  reader->num_writers_ = static_cast<int>(writers);
  for (int rank = 0; rank < reader->num_writers_; ++rank) {
    const std::string path = bp_subfile_path(dir, stream, rank);
    FLEXIO_RETURN_IF_ERROR(reader->index_subfile(path, rank));
    reader->subfile_paths_.push_back(path);
  }
  return reader;
}

Status BpReader::index_subfile(const std::string& path, int rank) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "missing subfile: " + path);
  }
  std::vector<std::byte> raw = read_all(in);
  serial::BufReader r{ByteView(raw)};
  char magic[4];
  FLEXIO_RETURN_IF_ERROR(r.get_raw(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return make_error(ErrorCode::kInvalidArgument, "bad subfile magic");
  }
  std::uint32_t version = 0, file_rank = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_u32(&version));
  FLEXIO_RETURN_IF_ERROR(r.get_u32(&file_rank));
  if (file_rank != static_cast<std::uint32_t>(rank)) {
    return make_error(ErrorCode::kInvalidArgument, "subfile rank mismatch");
  }
  for (;;) {
    std::uint8_t marker = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_u8(&marker));
    if (marker == kEndMarker) return Status::ok();
    if (marker != kStepMarker) {
      return make_error(ErrorCode::kInvalidArgument, "corrupt step marker");
    }
    StepId step = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_i64(&step));
    std::uint64_t nvars = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&nvars));
    for (std::uint64_t v = 0; v < nvars; ++v) {
      auto meta = VarMeta::decode(&r);
      if (!meta.is_ok()) return meta.status();
      std::uint64_t len = 0;
      FLEXIO_RETURN_IF_ERROR(r.get_varint(&len));
      BpBlockRef ref;
      ref.writer_rank = rank;
      ref.step = step;
      ref.meta = std::move(meta).value();
      ref.payload_offset = r.position();
      ref.payload_bytes = len;
      if (len != ref.meta.payload_bytes()) {
        return make_error(ErrorCode::kInvalidArgument,
                          "payload/metadata size mismatch in subfile");
      }
      FLEXIO_RETURN_IF_ERROR(r.seek(r.position() + len));
      index_[{step, ref.meta.name}].push_back(std::move(ref));
    }
  }
}

std::vector<StepId> BpReader::steps() const {
  std::set<StepId> uniq;
  for (const auto& [key, blocks] : index_) uniq.insert(key.first);
  return std::vector<StepId>(uniq.begin(), uniq.end());
}

std::vector<BpBlockRef> BpReader::blocks_for_writer(StepId step,
                                                    int writer_rank) const {
  std::vector<BpBlockRef> out;
  for (const auto& [key, blocks] : index_) {
    if (key.first != step) continue;
    for (const BpBlockRef& ref : blocks) {
      if (ref.writer_rank == writer_rank) out.push_back(ref);
    }
  }
  return out;
}

StatusOr<std::vector<BpBlockRef>> BpReader::inquire(
    StepId step, const std::string& name) const {
  const auto it = index_.find({step, name});
  if (it == index_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no variable '" + name + "' at step " +
                          std::to_string(step));
  }
  return it->second;
}

Status BpReader::read_block(const BpBlockRef& ref, MutableByteView out) {
  if (out.size() != ref.payload_bytes) {
    return make_error(ErrorCode::kInvalidArgument, "block buffer size wrong");
  }
  std::ifstream in(subfile_paths_[static_cast<std::size_t>(ref.writer_rank)],
                   std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "subfile vanished");
  }
  in.seekg(static_cast<std::streamoff>(ref.payload_offset));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != out.size()) {
    return make_error(ErrorCode::kInternal, "short block read");
  }
  return Status::ok();
}

Status BpReader::read_global(StepId step, const std::string& name,
                             const Box& selection, MutableByteView dst) {
  auto blocks = inquire(step, name);
  if (!blocks.is_ok()) return blocks.status();
  if (blocks.value().empty()) {
    return make_error(ErrorCode::kNotFound, "no blocks for " + name);
  }
  const std::size_t elem = serial::size_of(blocks.value()[0].meta.type);
  if (dst.size() != selection.elements() * elem) {
    return make_error(ErrorCode::kInvalidArgument,
                      "selection buffer size wrong");
  }
  std::uint64_t covered = 0;
  std::vector<std::byte> block_data;
  for (const BpBlockRef& ref : blocks.value()) {
    if (ref.meta.shape != ShapeKind::kGlobalArray) {
      return make_error(ErrorCode::kInvalidArgument,
                        name + " is not a global array");
    }
    Box overlap;
    if (!intersect(ref.meta.block, selection, &overlap)) continue;
    block_data.resize(ref.payload_bytes);
    FLEXIO_RETURN_IF_ERROR(read_block(ref, MutableByteView(block_data)));
    copy_region(ref.meta.block, block_data.data(), selection, dst.data(),
                overlap, elem);
    covered += overlap.elements();
  }
  // Writers produce disjoint blocks, so coverage equals the element count
  // exactly when the union covers the selection.
  if (covered < selection.elements()) {
    return make_error(ErrorCode::kOutOfRange,
                      "writer blocks do not cover the selection of " + name);
  }
  return Status::ok();
}

}  // namespace flexio::adios
