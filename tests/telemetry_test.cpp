// Tests for the live telemetry plane: Prometheus-style text exposition,
// label-family retirement (including the stream-close path through the
// registry), the shared flexio-stats-v1 delta encoder, the heartbeat
// stats trailer and its directory-side cluster aggregation, the health
// watchdog's detectors under the fake clock, and the stats server's
// scrape endpoints over a real loopback socket.
//
// The two acceptance scenarios from the issue live here: an injected
// credit-starvation stall plus a killed reader rank must produce exactly
// the two matching flexio-health-v1 events within two watchdog intervals
// (WatchdogTest.StarvedStreamAndDeadRankEmitExactlyTwoEvents), and one
// scrape of a simulated 2-rank deployment must return both ranks'
// per-phase histograms through the directory aggregation path
// (ClusterTest.TwoRankScrapeReturnsBothRanksPhaseHistograms).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "core/runtime.h"
#include "core/wire.h"
#include "evpath/directory.h"
#include "util/flight_recorder.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/stats_delta.h"
#include "util/stats_server.h"
#include "util/watchdog.h"

namespace flexio {
namespace {

using namespace std::chrono_literals;

std::atomic<std::uint64_t> g_fake_ns{0};
std::uint64_t fake_clock() {
  return g_fake_ns.load(std::memory_order_relaxed);
}

/// RAII: metrics + fake clock on, everything restored on destruction.
class FakeClockFixture {
 public:
  FakeClockFixture() {
    was_metrics_ = metrics::enabled();
    metrics::set_enabled(true);
    g_fake_ns.store(1000, std::memory_order_relaxed);
    metrics::set_clock_for_testing(&fake_clock);
  }
  ~FakeClockFixture() {
    metrics::set_clock_for_testing(nullptr);
    metrics::set_enabled(was_metrics_);
  }

  void advance(std::uint64_t ns) {
    g_fake_ns.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  bool was_metrics_ = false;
};

bool snapshot_has(const std::string& name) {
  const auto snaps = metrics::snapshot_all();
  return snaps.find(name) != snaps.end();
}

// ------------------------------------------------------- text exposition --

TEST(ExposeTest, RendersCountersGaugesAndHistogramSummaries) {
  metrics::set_enabled(true);
  metrics::counter("telemetrytest.expose.count").add(3);
  metrics::gauge("telemetrytest.expose.gauge").add(7);
  metrics::Histogram& h = metrics::histogram("telemetrytest.expose.hist");
  h.record(100);
  h.record(200);

  const std::string text = metrics::expose_text();
  // Dots sanitize to underscores; counters and gauges are single samples.
  EXPECT_NE(text.find("# TYPE telemetrytest_expose_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("telemetrytest_expose_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE telemetrytest_expose_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("telemetrytest_expose_gauge 7"), std::string::npos);
  // Histograms render as summaries: quantile samples plus _sum and _count.
  EXPECT_NE(text.find("telemetrytest_expose_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("telemetrytest_expose_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("telemetrytest_expose_hist_sum 300"),
            std::string::npos);
  EXPECT_NE(text.find("telemetrytest_expose_hist_count 2"),
            std::string::npos);
}

// ----------------------------------------------------- family retirement --

TEST(FamilyTest, RetireFreesCardinalitySlotAndDropsSeries) {
  metrics::set_enabled(true);
  metrics::Family<metrics::Counter> fam("telemetrytest.fam", 2);
  fam.with("a").inc();
  fam.with("b").inc();
  fam.with("c").inc();  // over the cap: lands in .other
  EXPECT_TRUE(snapshot_has("telemetrytest.fam.a"));
  EXPECT_TRUE(snapshot_has("telemetrytest.fam.b"));
  EXPECT_FALSE(snapshot_has("telemetrytest.fam.c"));
  EXPECT_TRUE(snapshot_has("telemetrytest.fam.other"));

  // Retiring a resolved label drops its series from scrapes...
  EXPECT_TRUE(fam.retire("a"));
  EXPECT_FALSE(snapshot_has("telemetrytest.fam.a"));
  // ...and frees the slot: the next new label gets its own series.
  fam.with("d").inc();
  EXPECT_TRUE(snapshot_has("telemetrytest.fam.d"));

  // Labels that never had their own series cannot be retired.
  EXPECT_FALSE(fam.retire("c"));
  EXPECT_FALSE(fam.retire("never-seen"));
}

TEST(FamilyTest, StreamCloseRetiresPerStreamSeries) {
  metrics::set_enabled(true);
  Runtime rt;
  MuxOptions mux;
  mux.shared_links = true;
  mux.timeout = 20s;
  auto ch = rt.registry().attach("retire_probe", "progT", 0,
                                 evpath::Location{0, 0}, evpath::LinkOptions{},
                                 mux);
  ASSERT_TRUE(ch.is_ok()) << ch.status().to_string();
  EXPECT_TRUE(snapshot_has("flexio.stream.credits.retire_probe"));
  EXPECT_TRUE(snapshot_has("flexio.stream.queued_bytes.retire_probe"));
  EXPECT_TRUE(snapshot_has("flexio.stream.stalls.retire_probe"));

  // Dropping the last channel for the stream retires all three series, so
  // a long-lived process's scrape stops showing closed streams as live.
  ch.value().reset();
  EXPECT_FALSE(snapshot_has("flexio.stream.credits.retire_probe"));
  EXPECT_FALSE(snapshot_has("flexio.stream.queued_bytes.retire_probe"));
  EXPECT_FALSE(snapshot_has("flexio.stream.stalls.retire_probe"));
}

// --------------------------------------------------------- delta encoder --

TEST(DeltaEncoderTest, HistogramDeltasCarryCumulativeQuantiles) {
  FakeClockFixture fix;
  telemetry::DeltaEncoder enc;
  enc.prime();

  metrics::Histogram& h =
      metrics::histogram("telemetrytest.delta.quantiles");
  for (int i = 0; i < 100; ++i) h.record(1024);
  const std::string line = enc.next_line(1, 5000);
  ASSERT_FALSE(line.empty());

  auto doc = json::parse(line);
  ASSERT_TRUE(doc.is_ok()) << line;
  const json::Value* hists = doc.value().find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* hist = hists->find("telemetrytest.delta.quantiles");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_number(), 100);
  EXPECT_EQ(hist->find("sum")->as_number(), 100 * 1024);
  // p50/p99 are cumulative bucket-quantiles at sample time; every sample
  // is the exact bucket lower bound 1024, so both report exactly.
  ASSERT_NE(hist->find("p50"), nullptr);
  ASSERT_NE(hist->find("p99"), nullptr);
  EXPECT_EQ(hist->find("p50")->as_number(), 1024.0);
  EXPECT_EQ(hist->find("p99")->as_number(), 1024.0);

  // Nothing moved: no line.
  EXPECT_TRUE(enc.next_line(2, 6000).empty());
}

// -------------------------------------------------- flight-recorder tail --

TEST(FlightTailTest, RecordEventEntersTailAndFile) {
  FakeClockFixture fix;
  const std::string path =
      testing::TempDir() + "telemetrytest_flight_tail.jsonl";
  std::remove(path.c_str());
  flight::Options opts;
  opts.path = path;
  opts.background = false;
  ASSERT_TRUE(flight::start(opts).is_ok());

  metrics::counter("telemetrytest.tail.counter").inc();
  ASSERT_TRUE(flight::sample_now().is_ok());
  flight::record_event("{\"schema\":\"flexio-health-v1\",\"rule\":\"t\"}");
  flight::stop();

  const auto tail = flight::tail(16);
  ASSERT_GE(tail.size(), 2u);  // start marker, sample, event
  bool saw_event = false;
  for (const std::string& line : tail) {
    if (line.find("flexio-health-v1") != std::string::npos) saw_event = true;
    EXPECT_TRUE(json::parse(line).is_ok()) << line;
  }
  EXPECT_TRUE(saw_event);
  // tail(n) bounds the result.
  EXPECT_LE(flight::tail(1).size(), 1u);
  std::remove(path.c_str());
}

// ------------------------------------------------------- health watchdog --

/// Acceptance: an injected credit-starvation stall plus a killed reader
/// rank produce the two matching flexio-health-v1 events -- and only
/// those -- within two watchdog intervals under the fake clock.
TEST(WatchdogTest, StarvedStreamAndDeadRankEmitExactlyTwoEvents) {
  FakeClockFixture fix;

  // A directory with one joined reader rank that will miss its TTL.
  evpath::DirectoryServer directory;
  evpath::MembershipOptions membership;
  membership.enabled = true;
  membership.ttl = std::chrono::nanoseconds(150);
  directory.set_membership_options(membership);
  ASSERT_TRUE(directory.register_stream("wd_fields", "writer0").is_ok());
  ASSERT_TRUE(directory.join_member("wd_fields", 1, "reader1").is_ok());

  // An injected credit-starved stream: credits pinned at 0 with stalls
  // climbing (queued bytes present, so the disjoint no-progress rule must
  // stay quiet: it requires credits > 0).
  metrics::Gauge& credits = metrics::gauge("flexio.stream.credits.wd_fields");
  metrics::Counter& stalls =
      metrics::counter("flexio.stream.stalls.wd_fields");
  metrics::gauge("flexio.stream.queued_bytes.wd_fields").add(4096);
  (void)credits;  // stays 0: starved

  telemetry::Watchdog watchdog;
  telemetry::WatchdogOptions options;
  options.interval_ns = 100;
  options.credit_intervals = 2;
  options.membership_probe = [&directory] {
    return directory.dead_members();
  };
  ASSERT_TRUE(watchdog.start(options).is_ok());

  // Interval 1 (t=1100): first sighting primes the stream baseline. The
  // reader's TTL (joined at t=1000, ttl 150) has not expired yet.
  stalls.inc();
  fix.advance(100);
  watchdog.poll();
  EXPECT_EQ(watchdog.events().size(), 0u);

  // Interval 2 (t=1200): starved interval 1 of 2. TTL now expired.
  stalls.inc();
  fix.advance(100);
  watchdog.poll();

  // Interval 3 (t=1300): starved interval 2 -> credit-starved fires.
  stalls.inc();
  fix.advance(100);
  watchdog.poll();

  const auto events = watchdog.events();
  ASSERT_EQ(events.size(), 2u);  // exactly the two injected faults
  const auto find_rule = [&events](const std::string& rule)
      -> const telemetry::HealthEvent* {
    for (const auto& ev : events) {
      if (ev.rule == rule) return &ev;
    }
    return nullptr;
  };
  const telemetry::HealthEvent* starved = find_rule("credit-starved");
  ASSERT_NE(starved, nullptr);
  EXPECT_EQ(starved->subject, "wd_fields");
  const telemetry::HealthEvent* dead = find_rule("rank-dead");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->subject, "wd_fields/1");
  EXPECT_EQ(watchdog.active_conditions(), 2u);

  // Both render as valid flexio-health-v1 JSON (what /health serves).
  for (const auto& ev : events) {
    auto doc = json::parse(ev.to_json());
    ASSERT_TRUE(doc.is_ok()) << ev.to_json();
    EXPECT_EQ(doc.value().find("schema")->as_string(), "flexio-health-v1");
  }

  // The latch holds: the same conditions do not re-emit...
  stalls.inc();
  fix.advance(100);
  watchdog.poll();
  EXPECT_EQ(watchdog.events().size(), 2u);

  // ...until the starvation clears, after which it may fire again.
  metrics::gauge("flexio.stream.credits.wd_fields").add(5);
  fix.advance(100);
  watchdog.poll();
  EXPECT_EQ(watchdog.active_conditions(), 1u);  // rank-dead stays latched

  watchdog.stop();
}

TEST(WatchdogTest, SpinRunawayAndPoolDeadlineRules) {
  FakeClockFixture fix;
  metrics::reset_all();  // clear pool/spin history from earlier tests

  metrics::Counter& spins = metrics::counter("shm.queue.full_spins");
  spins.add(500);  // pre-start history: baselined away by start()

  telemetry::Watchdog watchdog;
  telemetry::WatchdogOptions options;
  options.interval_ns = 100;
  options.full_spin_limit = 1000;
  options.task_deadline_ns = 10'000;
  ASSERT_TRUE(watchdog.start(options).is_ok());

  // Below the per-interval limit: quiet.
  spins.add(900);
  fix.advance(100);
  watchdog.poll();
  EXPECT_EQ(watchdog.events().size(), 0u);

  // Runaway interval: fires once.
  spins.add(5000);
  fix.advance(100);
  watchdog.poll();
  ASSERT_EQ(watchdog.events().size(), 1u);
  EXPECT_EQ(watchdog.events()[0].rule, "shm-spin-runaway");

  // A pool task over the deadline fires; a shorter one does not re-fire;
  // a strictly longer one reports again.
  metrics::Histogram& exec = metrics::histogram("flexio.pool.exec_ns");
  exec.record(50'000);
  fix.advance(100);
  watchdog.poll();
  ASSERT_EQ(watchdog.events().size(), 2u);
  EXPECT_EQ(watchdog.events()[1].rule, "pool-task-deadline");

  exec.record(20'000);  // over deadline but under the reported max
  fix.advance(100);
  watchdog.poll();
  EXPECT_EQ(watchdog.events().size(), 2u);

  exec.record(200'000);
  fix.advance(100);
  watchdog.poll();
  ASSERT_EQ(watchdog.events().size(), 3u);
  EXPECT_EQ(watchdog.events()[2].rule, "pool-task-deadline");

  watchdog.stop();
}

TEST(WatchdogTest, SecondWatchdogRejectedAndHookDispatches) {
  FakeClockFixture fix;
  EXPECT_FALSE(telemetry::watchdog_active());
  telemetry::maybe_poll();  // no watchdog: the near-free path

  telemetry::Watchdog watchdog;
  telemetry::WatchdogOptions options;
  options.interval_ns = 100;
  ASSERT_TRUE(watchdog.start(options).is_ok());
  EXPECT_TRUE(telemetry::watchdog_active());

  telemetry::Watchdog second;
  EXPECT_EQ(second.start(options).code(), ErrorCode::kFailedPrecondition);

  // The cooperative hook evaluates only when a poll was requested.
  fix.advance(100);
  telemetry::maybe_poll();  // not requested: no-op
  telemetry::request_poll();
  telemetry::maybe_poll();  // performs the poll (no conditions: no events)
  EXPECT_EQ(watchdog.events().size(), 0u);

  watchdog.stop();
  EXPECT_FALSE(telemetry::watchdog_active());
}

// ------------------------------------------------ heartbeat stats trailer --

TEST(WireTrailerTest, HeartbeatStatsTrailerRoundTrips) {
  wire::Heartbeat hb;
  hb.stream = "wind";
  hb.rank = 3;
  hb.incarnation = 7;
  hb.send_ns = 42;
  hb.program = "viz";
  hb.stats = "{\"schema\":\"flexio-stats-v1\",\"seq\":1,\"t_ns\":42}";

  auto decoded = wire::decode_heartbeat(ByteView(wire::encode(hb)));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().stream, "wind");
  EXPECT_EQ(decoded.value().rank, 3);
  EXPECT_EQ(decoded.value().incarnation, 7u);
  EXPECT_EQ(decoded.value().program, "viz");
  EXPECT_EQ(decoded.value().stats, hb.stats);
}

TEST(WireTrailerTest, HeartbeatWithoutStatsDecodesEmpty) {
  // A frame with no stats trailer -- byte-identical to what a pre-trailer
  // encoder produced -- must decode with both fields empty.
  wire::Heartbeat hb;
  hb.stream = "wind";
  hb.rank = 1;
  hb.incarnation = 2;
  auto decoded = wire::decode_heartbeat(ByteView(wire::encode(hb)));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().program.empty());
  EXPECT_TRUE(decoded.value().stats.empty());
}

TEST(WireTrailerTest, StatsAndTraceTrailersCoexist) {
  wire::Heartbeat hb;
  hb.stream = "wind";
  hb.rank = 0;
  hb.incarnation = 1;
  wire::TraceContext trace;
  trace.span_id = 99;
  hb.trace = trace;
  hb.program = "sim";
  hb.stats = "{\"schema\":\"flexio-stats-v1\",\"seq\":2,\"t_ns\":7}";

  auto decoded = wire::decode_heartbeat(ByteView(wire::encode(hb)));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_TRUE(decoded.value().trace.has_value());
  EXPECT_EQ(decoded.value().trace->span_id, 99u);
  EXPECT_EQ(decoded.value().program, "sim");
  EXPECT_EQ(decoded.value().stats, hb.stats);
}

// --------------------------------------------------- cluster aggregation --

std::string stats_line(std::uint64_t t_ns, std::uint64_t pack_count,
                       std::uint64_t pack_sum) {
  std::string line = "{\"schema\":\"flexio-stats-v1\",\"seq\":1,\"t_ns\":" +
                     std::to_string(t_ns) + ",\"counters\":{" +
                     "\"flexio.bytes.sent\":1024},\"gauges\":{" +
                     "\"shm.queue.occupancy\":2},\"histograms\":{";
  bool first = true;
  for (const char* phase :
       {"pack", "enqueue", "transfer", "unpack", "total"}) {
    if (!first) line += ",";
    first = false;
    line += "\"flexio.step." + std::string(phase) + ".ns\":{\"count\":" +
            std::to_string(pack_count) + ",\"sum\":" +
            std::to_string(pack_sum) +
            ",\"p50\":2048.0,\"p99\":8192.0}";
  }
  line += "}}";
  return line;
}

TEST(DirectoryFoldTest, AccumulatesDeltasAndRejectsMalformed) {
  evpath::DirectoryServer directory;
  ASSERT_TRUE(
      directory.fold_stats("viz", 0, stats_line(100, 2, 5000)).is_ok());
  ASSERT_TRUE(
      directory.fold_stats("viz", 0, stats_line(200, 3, 7000)).is_ok());

  const auto cluster = directory.cluster();
  ASSERT_EQ(cluster.size(), 1u);
  const evpath::RankStats& rs = cluster[0];
  EXPECT_EQ(rs.program, "viz");
  EXPECT_EQ(rs.rank, 0);
  EXPECT_EQ(rs.frames, 2u);
  EXPECT_EQ(rs.last_ns, 200u);
  // Counters and histogram count/sum accumulate deltas; gauges and
  // quantiles keep the latest value.
  EXPECT_EQ(rs.counters.at("flexio.bytes.sent"), 2048u);
  EXPECT_EQ(rs.gauges.at("shm.queue.occupancy"), 2);
  const auto& pack = rs.histograms.at("flexio.step.pack.ns");
  EXPECT_EQ(pack.count, 5u);
  EXPECT_EQ(pack.sum, 12000u);
  EXPECT_EQ(pack.p50, 2048.0);
  EXPECT_EQ(pack.p99, 8192.0);

  // Malformed or wrong-schema lines are rejected without partial folds.
  EXPECT_FALSE(directory.fold_stats("viz", 0, "{ not json").is_ok());
  EXPECT_FALSE(
      directory.fold_stats("viz", 0, "{\"schema\":\"wrong-v9\"}").is_ok());
  EXPECT_EQ(directory.cluster()[0].frames, 2u);
}

/// Acceptance: one scrape of a 2-rank simulated deployment returns both
/// ranks' per-phase histograms through the directory aggregation path --
/// heartbeat frames with stats trailers delivered through the runtime,
/// folded by the directory, served at /cluster, fetched over a real
/// loopback socket.
TEST(ClusterTest, TwoRankScrapeReturnsBothRanksPhaseHistograms) {
  Runtime rt;
  evpath::MembershipOptions membership;
  membership.enabled = true;
  membership.ttl = std::chrono::seconds(5);
  rt.directory().set_membership_options(membership);
  ASSERT_TRUE(rt.directory().register_stream("wind", "writer0").is_ok());

  for (int rank = 0; rank < 2; ++rank) {
    auto member = rt.directory().join_member("wind", rank,
                                             "reader" + std::to_string(rank));
    ASSERT_TRUE(member.is_ok());
    wire::Heartbeat hb;
    hb.stream = "wind";
    hb.rank = rank;
    hb.incarnation = member.value().incarnation;
    hb.send_ns = 50 + static_cast<std::uint64_t>(rank);
    hb.program = "viz";
    hb.stats = stats_line(50 + static_cast<std::uint64_t>(rank),
                          4 + static_cast<std::uint64_t>(rank), 9000);
    ASSERT_TRUE(
        rt.deliver_heartbeat(ByteView(wire::encode(hb))).is_ok());
  }

  telemetry::StatsServer server;
  ASSERT_TRUE(server.start("127.0.0.1:0").is_ok());
  server.add_source("/cluster",
                    [&rt] { return rt.directory().cluster_json(); });

  std::string body;
  ASSERT_TRUE(telemetry::scrape(server.address(), "/cluster", &body).is_ok());
  server.stop();

  auto doc = json::parse(body);
  ASSERT_TRUE(doc.is_ok()) << body;
  EXPECT_EQ(doc.value().find("schema")->as_string(), "flexio-cluster-v1");
  const json::Value* ranks = doc.value().find("ranks");
  ASSERT_NE(ranks, nullptr);
  ASSERT_EQ(ranks->as_array().size(), 2u);
  for (int rank = 0; rank < 2; ++rank) {
    const json::Value& r = ranks->as_array()[static_cast<std::size_t>(rank)];
    EXPECT_EQ(r.find("program")->as_string(), "viz");
    EXPECT_EQ(r.find("rank")->as_number(), rank);
    const json::Value* hists = r.find("histograms");
    ASSERT_NE(hists, nullptr);
    for (const char* phase :
         {"pack", "enqueue", "transfer", "unpack", "total"}) {
      const json::Value* h =
          hists->find("flexio.step." + std::string(phase) + ".ns");
      ASSERT_NE(h, nullptr) << "rank " << rank << " missing " << phase;
      EXPECT_EQ(h->find("count")->as_number(), 4 + rank);
      EXPECT_EQ(h->find("p50")->as_number(), 2048.0);
      EXPECT_EQ(h->find("p99")->as_number(), 8192.0);
    }
  }
}

TEST(MonitorTest, ClusterPhaseReportFoldsAcrossRanks) {
  evpath::ClusterSnapshot cluster;
  for (int rank = 0; rank < 2; ++rank) {
    evpath::RankStats rs;
    rs.program = "viz";
    rs.rank = rank;
    rs.histograms["flexio.step.pack.ns"] = {10, 1000, 0, 0};
    rs.histograms["flexio.step.total.ns"] = {10, 5000, 0, 0};
    rs.counters["flexio.bytes.sent"] = 4096;
    rs.counters["flexio.handshake.performed"] = 3;
    cluster.push_back(rs);
  }
  evpath::RankStats other;
  other.program = "sim";
  other.rank = 0;
  other.histograms["flexio.step.pack.ns"] = {99, 99999, 0, 0};
  cluster.push_back(other);

  const wire::MonitorReport all = cluster_phase_report(cluster);
  EXPECT_EQ(all.pack_ns, 1000u + 1000u + 99999u);
  EXPECT_EQ(all.phase_steps, 20u);

  const wire::MonitorReport viz = cluster_phase_report(cluster, "viz");
  EXPECT_EQ(viz.pack_ns, 2000u);
  EXPECT_EQ(viz.total_ns, 10000u);
  EXPECT_EQ(viz.phase_steps, 20u);
  EXPECT_EQ(viz.bytes_sent, 8192u);
  EXPECT_EQ(viz.handshakes_performed, 6u);
  EXPECT_DOUBLE_EQ(viz.pack_seconds, 2000e-9);
}

// ------------------------------------------------------------ stats server --

TEST(StatsServerTest, ServesMetricsHealthAndFlight) {
  FakeClockFixture fix;
  metrics::counter("telemetrytest.server.counter").add(5);

  telemetry::StatsServer server;
  ASSERT_TRUE(server.start("127.0.0.1:0").is_ok());
  EXPECT_TRUE(server.running());
  // Double start is rejected.
  EXPECT_FALSE(server.start("127.0.0.1:0").is_ok());

  std::string body;
  ASSERT_TRUE(telemetry::scrape(server.address(), "/metrics", &body).is_ok());
  EXPECT_NE(body.find("telemetrytest_server_counter 5"), std::string::npos);

  // /health is empty without a watchdog, then serves its events.
  ASSERT_TRUE(telemetry::scrape(server.address(), "/health", &body).is_ok());
  EXPECT_TRUE(body.empty());

  evpath::DirectoryServer directory;
  evpath::MembershipOptions membership;
  membership.enabled = true;
  membership.ttl = std::chrono::nanoseconds(50);
  directory.set_membership_options(membership);
  ASSERT_TRUE(directory.register_stream("hs", "w").is_ok());
  ASSERT_TRUE(directory.join_member("hs", 2, "r").is_ok());
  telemetry::Watchdog watchdog;
  telemetry::WatchdogOptions options;
  options.interval_ns = 100;
  options.membership_probe = [&directory] {
    return directory.dead_members();
  };
  ASSERT_TRUE(watchdog.start(options).is_ok());
  server.set_watchdog(&watchdog);
  fix.advance(200);  // past the TTL and the poll interval
  watchdog.poll();
  ASSERT_TRUE(telemetry::scrape(server.address(), "/health", &body).is_ok());
  EXPECT_NE(body.find("\"rule\":\"rank-dead\""), std::string::npos);
  EXPECT_NE(body.find("\"subject\":\"hs/2\""), std::string::npos);

  // /flight serves the recorder's in-memory tail (health events included
  // via flight::record_event even when no recorder is running).
  ASSERT_TRUE(telemetry::scrape(server.address(), "/flight", &body).is_ok());
  EXPECT_NE(body.find("flexio-health-v1"), std::string::npos);

  // Unknown paths 404 (scrape reports the non-200 as an error).
  EXPECT_FALSE(
      telemetry::scrape(server.address(), "/nope", &body).is_ok());

  server.set_watchdog(nullptr);
  watchdog.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent

  // Scraping a closed server fails instead of hanging.
  EXPECT_FALSE(telemetry::scrape("127.0.0.1:1", "/metrics", &body).is_ok());
}

TEST(StatsServerTest, PublishFlagAndConfigure) {
  const bool was = telemetry::publish_enabled();
  telemetry::set_publish_enabled(false);
  EXPECT_FALSE(telemetry::publish_enabled());
  // configure with no address only ORs in the publish flag; it never
  // starts a listener.
  telemetry::StatsServer& server = telemetry::configure("", true);
  EXPECT_TRUE(telemetry::publish_enabled());
  EXPECT_FALSE(server.running());
  telemetry::configure("", false);  // cannot un-publish
  EXPECT_TRUE(telemetry::publish_enabled());
  telemetry::set_publish_enabled(was);
}

}  // namespace
}  // namespace flexio
