// Streaming statistics accumulators used by performance monitoring and the
// figure harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace flexio {

/// Single-pass min/max/mean/variance (Welford). Cheap enough to leave in the
/// data-movement hot path for the monitoring layer.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

/// Exact percentile over a retained sample vector. The monitoring layer keeps
/// per-timestep timings, which are small (thousands of points), so exact
/// quantiles are affordable.
class Percentiles {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return values_.size(); }

  /// q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace flexio
