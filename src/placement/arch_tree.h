// Architecture trees: the machine model placement maps onto.
//
// The holistic policy models the target machine as a two-level tree (cores
// of one node are siblings with cheaper communication than cores on
// different nodes); the node-topology-aware policy extends it to a
// multi-level hierarchy whose intermediate levels follow the cache/NUMA
// topology (paper Section III.B.2-3, Figure 5). Leaves are cores,
// identified by the global core id of sim::MachineDesc.
#pragma once

#include <memory>
#include <vector>

#include "sim/machine.h"
#include "util/status.h"

namespace flexio::placement {

struct ArchNode {
  // Relative cost of communication between children of this node; smaller
  // is closer (used by the mapper to prioritize keeping heavy edges deep).
  double link_cost = 1.0;
  long first_core = 0;  // leaves covered: [first_core, first_core + cores)
  long cores = 1;
  std::vector<std::unique_ptr<ArchNode>> children;

  bool is_leaf() const { return children.empty(); }
};

class ArchTree {
 public:
  /// Two-level tree over the first `nodes_used` nodes: machine -> node ->
  /// core (the holistic policy's model).
  static ArchTree two_level(const sim::MachineDesc& machine, int nodes_used);

  /// Multi-level tree: machine -> node -> socket (NUMA domain) -> core
  /// (the node-topology-aware policy's model).
  static ArchTree topology_aware(const sim::MachineDesc& machine,
                                 int nodes_used);

  const ArchNode& root() const { return *root_; }
  long total_cores() const { return root_->cores; }
  const sim::MachineDesc& machine() const { return machine_; }

  /// Relative communication cost between two cores: the link cost of their
  /// lowest common ancestor (0 for the same core).
  double core_distance(long a, long b) const;

 private:
  std::unique_ptr<ArchNode> root_;
  sim::MachineDesc machine_;
};

}  // namespace flexio::placement
