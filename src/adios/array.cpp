#include "adios/array.h"

#include <algorithm>
#include <cstring>

namespace flexio::adios {

std::uint64_t volume(const Dims& d) {
  std::uint64_t v = 1;
  for (std::uint64_t x : d) v *= x;
  return v;
}

std::string dims_to_string(const Dims& d) {
  std::string out = "[";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(d[i]);
  }
  out += "]";
  return out;
}

bool intersect(const Box& a, const Box& b, Box* out) {
  FLEXIO_CHECK(a.valid() && b.valid());
  FLEXIO_CHECK(a.ndim() == b.ndim());
  const std::size_t n = a.ndim();
  out->offset.resize(n);
  out->count.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t lo = std::max(a.offset[i], b.offset[i]);
    const std::uint64_t hi =
        std::min(a.offset[i] + a.count[i], b.offset[i] + b.count[i]);
    if (hi <= lo) return false;
    out->offset[i] = lo;
    out->count[i] = hi - lo;
  }
  return true;
}

bool contains(const Box& outer, const Box& inner) {
  FLEXIO_CHECK(outer.ndim() == inner.ndim());
  for (std::size_t i = 0; i < outer.ndim(); ++i) {
    if (inner.offset[i] < outer.offset[i]) return false;
    if (inner.offset[i] + inner.count[i] > outer.offset[i] + outer.count[i]) {
      return false;
    }
  }
  return true;
}

std::uint64_t flat_index(const Box& box, const Dims& coord) {
  FLEXIO_CHECK(coord.size() == box.ndim());
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < box.ndim(); ++i) {
    FLEXIO_CHECK(coord[i] >= box.offset[i]);
    FLEXIO_CHECK(coord[i] < box.offset[i] + box.count[i]);
    idx = idx * box.count[i] + (coord[i] - box.offset[i]);
  }
  return idx;
}

namespace {

/// Recursive row-major walk: iterate all but the last dimension, memcpy
/// contiguous runs along the last.
void copy_recursive(const Box& src_box, const std::byte* src,
                    const Box& dst_box, std::byte* dst, const Box& region,
                    std::size_t elem_size, Dims& coord, std::size_t dim) {
  const std::size_t n = region.ndim();
  if (dim + 1 == n || n == 0) {
    // Innermost run (whole region for 0-d/1-d).
    const std::uint64_t run =
        n == 0 ? 1 : region.count[n - 1];
    if (n > 0) coord[n - 1] = region.offset[n - 1];
    const std::uint64_t s = n == 0 ? 0 : flat_index(src_box, coord);
    const std::uint64_t d = n == 0 ? 0 : flat_index(dst_box, coord);
    std::memcpy(dst + d * elem_size, src + s * elem_size, run * elem_size);
    return;
  }
  for (std::uint64_t i = 0; i < region.count[dim]; ++i) {
    coord[dim] = region.offset[dim] + i;
    copy_recursive(src_box, src, dst_box, dst, region, elem_size, coord,
                   dim + 1);
  }
}

}  // namespace

void copy_region(const Box& src_box, const std::byte* src, const Box& dst_box,
                 std::byte* dst, const Box& region, std::size_t elem_size) {
  FLEXIO_CHECK(contains(src_box, region));
  FLEXIO_CHECK(contains(dst_box, region));
  FLEXIO_CHECK(elem_size > 0);
  if (region.elements() == 0) return;
  Dims coord(region.ndim(), 0);
  copy_recursive(src_box, src, dst_box, dst, region, elem_size, coord, 0);
}

Box block_decompose(const Dims& global, int parts, int part, int dim) {
  FLEXIO_CHECK(parts > 0);
  FLEXIO_CHECK(part >= 0 && part < parts);
  FLEXIO_CHECK(static_cast<std::size_t>(dim) < global.size());
  Box box;
  box.offset.assign(global.size(), 0);
  box.count = global;
  const std::uint64_t total = global[static_cast<std::size_t>(dim)];
  const std::uint64_t base = total / static_cast<std::uint64_t>(parts);
  const std::uint64_t extra = total % static_cast<std::uint64_t>(parts);
  const auto p = static_cast<std::uint64_t>(part);
  const std::uint64_t begin = p * base + std::min(p, extra);
  const std::uint64_t size = base + (p < extra ? 1 : 0);
  box.offset[static_cast<std::size_t>(dim)] = begin;
  box.count[static_cast<std::size_t>(dim)] = size;
  return box;
}

}  // namespace flexio::adios
