// Thread-safe append-only event log for deterministic replay checks.
//
// The torture harness records every fault-injection decision here. Threads
// append concurrently, so insertion order is interleaving-dependent; the
// canonical() form sorts lines so two runs of the same seeded plan over the
// same workload compare byte-for-byte regardless of scheduling. The
// fingerprint is a cheap stand-in for full-log comparison in assertions and
// failure banners.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"

namespace flexio {

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one event line (any thread).
  void append(std::string line);

  /// Snapshot in insertion order (interleaving-dependent across threads).
  std::vector<std::string> lines() const;

  /// Deterministic serialization: lines sorted lexicographically, joined
  /// with '\n'. Identical seeded runs produce identical canonical forms.
  std::string canonical() const;

  /// FNV-1a hash of canonical(); cheap equality proxy for replay checks.
  std::uint64_t fingerprint() const;

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

}  // namespace flexio
