// Health watchdog: rule-based detectors over metrics-registry deltas.
//
// The flight recorder answers "what happened"; the watchdog answers "is
// something wrong right now". It polls the registry at a fixed interval
// and evaluates a small catalogue of detectors (docs/OBSERVABILITY.md):
//
//   credit-starved      a stream whose flexio.stream.credits.<s> gauge is
//                       pinned at 0 while flexio.stream.stalls.<s> keeps
//                       climbing, for `credit_intervals` consecutive
//                       intervals -- the writer is blocked on a reader
//                       that is not draining.
//   stream-no-progress  a stream with credits available and queued bytes
//                       sitting unchanged for `stall_intervals` intervals
//                       -- data is waiting but nothing moves it.
//   shm-spin-runaway    shm.queue.full_spins grew by more than
//                       `full_spin_limit` in one interval -- a producer is
//                       burning a core against a full ring.
//   pool-task-deadline  flexio.pool.exec_ns observed a task longer than
//                       `task_deadline_ns` -- an analytics kernel wedged a
//                       drain-pool worker.
//   rank-dead           the membership probe reports a member the
//                       directory declared dead (missed heartbeats).
//
// Rules are deliberately disjoint (credit-starved requires credits == 0;
// no-progress requires credits > 0) so one underlying fault produces one
// event stream, not a chorus. A firing condition emits exactly one
// "flexio-health-v1" event when it first latches and may fire again only
// after the condition clears:
//
//   {"schema":"flexio-health-v1","t_ns":400000,"rule":"credit-starved",
//    "subject":"fields","detail":"credits pinned at 0, 12 stalls over 2
//    intervals"}
//
// Events go to the log (kWarn), the flight recorder (flight::record_event,
// so they interleave with stats samples and reach the stats server's
// /flight tail), and the watchdog's own event list (served at /health).
//
// Cost model: the maybe_poll() hook is one relaxed load + branch when no
// watchdog is running (BM_WatchdogDisabled gates this in perf-smoke).
// Time comes from metrics::now_ns(), so every detector is deterministic
// under the fake clock: tests advance the clock and call poll().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace flexio::telemetry {

/// One detector firing. Rendered as a "flexio-health-v1" JSON object.
struct HealthEvent {
  std::string rule;     // detector name, e.g. "credit-starved"
  std::string subject;  // stream label, rank descriptor, or metric name
  std::string detail;   // human-readable context
  std::uint64_t t_ns = 0;

  std::string to_json() const;
};

struct WatchdogOptions {
  std::uint64_t interval_ns = 100'000'000;  // rule-evaluation period
  int credit_intervals = 2;   // starved intervals before credit-starved
  int stall_intervals = 3;    // stuck intervals before stream-no-progress
  std::uint64_t full_spin_limit = 1'000'000;  // full_spins delta per interval
  std::uint64_t task_deadline_ns = 0;         // 0 disables pool-task-deadline
  bool background = false;  // true: spawn a poller thread (real clock)
  /// Dead members as reported by the directory (descriptors like
  /// "viz/1"); empty function disables the rank-dead rule.
  std::function<std::vector<std::string>()> membership_probe;
};

namespace detail {
extern std::atomic<bool> g_active;
extern std::atomic<bool> g_due;
void poll_due();
}  // namespace detail

/// True while a watchdog is running (between start() and stop()).
inline bool watchdog_active() {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// Cooperative polling hook for instrumented call sites: near-free when no
/// watchdog is running or no poll has been requested; otherwise evaluates
/// the rules (at most once per interval).
inline void maybe_poll() {
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  if (!detail::g_due.load(std::memory_order_relaxed)) return;
  detail::poll_due();
}

/// Mark a poll due; the next maybe_poll() on any thread performs it.
void request_poll();

/// Rule evaluator. One instance may run per process (start() registers it
/// as the target of maybe_poll()); construction is cheap and instances are
/// reusable across start()/stop() cycles.
class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Begin watching. Baselines the registry so deltas start from now.
  /// Fails if this or another watchdog is already running.
  Status start(const WatchdogOptions& options);

  /// Stop watching (joins the poller thread in background mode). Keeps
  /// the accumulated event list for inspection. No-op when not running.
  void stop();

  /// Evaluate all rules once if at least one interval has elapsed since
  /// the previous evaluation (per metrics::now_ns()); otherwise no-op.
  void poll();

  /// Events emitted since start(), oldest first.
  std::vector<HealthEvent> events() const;

  /// Events rendered as "flexio-health-v1" JSON lines (one per event).
  std::string events_json() const;

  /// Conditions currently latched (firing and not yet cleared).
  std::size_t active_conditions() const;

 private:
  struct StreamState {
    int starved = 0;        // consecutive starved intervals
    int stuck = 0;          // consecutive no-progress intervals
    std::uint64_t stalls = 0;
    std::int64_t queued = 0;
    bool primed = false;
  };

  void poll_locked(std::uint64_t now);
  void emit_locked(const std::string& rule, const std::string& subject,
                   std::string detail, std::uint64_t now);
  void clear_locked(const std::string& rule, const std::string& subject);

  mutable std::mutex mutex_;
  WatchdogOptions options_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::condition_variable cv_;
  std::thread thread_;
  std::uint64_t last_eval_ns_ = 0;
  std::uint64_t full_spins_prev_ = 0;
  std::uint64_t exec_max_reported_ = 0;
  std::map<std::string, StreamState> streams_;
  std::set<std::string> dead_reported_;
  std::set<std::string> active_;  // latched "rule\0subject" conditions
  std::vector<HealthEvent> events_;
};

}  // namespace flexio::telemetry
