#include "core/stream_writer.h"

#include <cstring>
#include <thread>

#include "util/log.h"
#include "util/metrics.h"
#include "util/stats_server.h"
#include "util/trace.h"

namespace flexio {

namespace {
std::chrono::nanoseconds ns_from_ms(double ms) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(ms * 1e6));
}

// Process-wide handshake accounting, shared with StreamReader: both sides
// bump the same registry counters, so in a colocated test the totals are
// 2x the per-side expectation. The per-instance PerfMonitor keeps exact
// per-endpoint numbers for wire::MonitorReport.
metrics::Counter& handshakes_performed_counter() {
  static metrics::Counter& c = metrics::counter("flexio.handshake.performed");
  return c;
}
metrics::Counter& handshakes_skipped_counter() {
  static metrics::Counter& c = metrics::counter("flexio.handshake.skipped");
  return c;
}
metrics::Counter& stream_bytes_sent_counter() {
  static metrics::Counter& c = metrics::counter("flexio.bytes.sent");
  return c;
}
metrics::Counter& plan_cache_hits_counter() {
  static metrics::Counter& c = metrics::counter("flexio.plan.cache_hits");
  return c;
}
metrics::Counter& plan_cache_misses_counter() {
  static metrics::Counter& c = metrics::counter("flexio.plan.cache_misses");
  return c;
}
// Pieces planned for a reader that turned out to be gone (left, dead, or
// declared gone mid-send). Dropped, never retried: the next epoch-changed
// handshake re-plans the step over the survivors.
metrics::Counter& dropped_pieces_counter() {
  static metrics::Counter& c = metrics::counter("flexio.membership.dropped_pieces");
  return c;
}
// Per-step phase attribution (Section II.G): time the writer spends
// packing regions vs. handing frames to the transport, recorded once per
// step as a sum over the step's pieces.
metrics::Histogram& step_pack_hist() {
  static metrics::Histogram& h = metrics::histogram("flexio.step.pack.ns");
  return h;
}
metrics::Histogram& step_enqueue_hist() {
  static metrics::Histogram& h = metrics::histogram("flexio.step.enqueue.ns");
  return h;
}
// Parallel-pack critical path: the slowest per-reader pack task of the
// step. With a serial writer this equals the largest single reader's pack
// time; the gap between it and flexio.step.pack.ns (the sum over tasks =
// total work) is what parallelism reclaims from the step's wall clock.
metrics::Histogram& step_pack_critical_hist() {
  static metrics::Histogram& h =
      metrics::histogram("flexio.step.pack.critical.ns");
  return h;
}
}  // namespace

StreamWriter::~StreamWriter() {
  if (!closed_ && !in_step_) (void)close();
}

Status StreamWriter::open(Runtime* rt, const StreamSpec& spec) {
  trace::Span span("writer.open");
  rt_ = rt;
  spec_ = spec;
  stream_id_ = wire::stream_id_hash(spec.stream);
  program_ = spec.endpoint.program;
  rank_ = spec.endpoint.rank;
  timeout_ = ns_from_ms(spec.method.timeout_ms);
  FLEXIO_CHECK(program_ != nullptr);
  FLEXIO_CHECK(rank_ >= 0 && rank_ < program_->size());
  if (spec.method.telemetry || !spec.method.stats_addr.empty()) {
    telemetry::configure(spec.method.stats_addr, spec.method.telemetry);
  }

  if (spec.method.method != "FLEXIO") {
    // File mode: any ADIOS-style file method name maps to the BP engine.
    auto bp = adios::BpWriter::create(spec.file_dir, spec.stream, rank_,
                                      program_->size());
    if (!bp.is_ok()) return bp.status();
    bp_ = std::move(bp).value();
    return Status::ok();
  }

  // Stream mode: resolve the packing concurrency (config wins, then the
  // FLEXIO_PACK_THREADS env knob, then serial) and spawn the pool once per
  // stream -- per-step spawning would dwarf the pack times it parallelizes.
  pack_threads_ = spec.method.pack_threads > 0
                      ? spec.method.pack_threads
                      : util::WorkPool::env_pack_threads(1);
  if (pack_threads_ > 1) {
    pack_pool_ = std::make_shared<util::WorkPool>(pack_threads_ - 1);
  }

  // Create this rank's endpoint and rendezvous with the reader program
  // through the directory server (Section II.C.1).
  evpath::LinkOptions lopts;
  lopts.queue_entries = spec.method.queue_entries;
  lopts.queue_payload_bytes = spec.method.queue_payload_bytes;
  lopts.pool_bytes = spec.method.pool_bytes;
  lopts.rdma_pool_bytes = spec.method.rdma_pool_bytes;
  lopts.timeout = timeout_;
  lopts.max_retries = spec.method.max_retries;
  MuxOptions mux;
  mux.shared_links = spec.method.shared_links;
  mux.credit_bytes = spec.method.credit_bytes;
  mux.drr_quantum_bytes = spec.method.drr_quantum_bytes;
  mux.timeout = timeout_;
  auto ch = rt->registry().attach(spec.stream, program_->name(), rank_,
                                  spec.endpoint.location, lopts, mux);
  if (!ch.is_ok()) return ch.status();
  channel_ = std::move(ch).value();

  membership_ = rt->directory().membership_enabled();

  std::vector<std::byte> reader_info;
  if (rank_ == Program::kCoordinator) {
    // Register with the open-info blob a late joiner bootstraps from: the
    // same fields the OpenReply would carry, known before any reader calls.
    wire::OpenReply info;
    info.writer_program = program_->name();
    info.writer_size = program_->size();
    info.caching = static_cast<std::uint8_t>(spec.method.caching);
    info.batching = spec.method.batching;
    info.async_writes = spec.method.async_writes;
    FLEXIO_RETURN_IF_ERROR(rt->directory().register_stream(
        spec.stream, channel_->name(), wire::encode(info)));
    // Wait for the reader coordinator's OpenRequest.
    evpath::Message msg;
    FLEXIO_RETURN_IF_ERROR(channel_->recv(&msg, timeout_));
    auto req = wire::decode_open_request(ByteView(msg.payload));
    if (!req.is_ok()) return req.status();
    if (StreamRegistry::is_shared_name(msg.from) != channel_->shared()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "stream multiplexing mode mismatch: reader contact " +
                            msg.from);
    }
    reader_program_ = req.value().reader_program;
    reader_size_ = req.value().reader_size;
    reader_coord_ = msg.from;
    wire::OpenReply reply;
    reply.writer_program = program_->name();
    reply.writer_size = program_->size();
    reply.caching = static_cast<std::uint8_t>(spec.method.caching);
    reply.batching = spec.method.batching;
    reply.async_writes = spec.method.async_writes;
    FLEXIO_RETURN_IF_ERROR(
        channel_->send(reader_coord_, ByteView(wire::encode(reply))));
    serial::BufWriter w;
    w.put_string(reader_program_);
    w.put_varint(static_cast<std::uint64_t>(reader_size_));
    reader_info = w.take();
  }
  FLEXIO_RETURN_IF_ERROR(program_->broadcast(rank_, &reader_info, timeout_));
  if (rank_ != Program::kCoordinator) {
    serial::BufReader r{ByteView(reader_info)};
    FLEXIO_RETURN_IF_ERROR(r.get_string(&reader_program_));
    std::uint64_t size = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&size));
    reader_size_ = static_cast<int>(size);
  }
  return Status::ok();
}

Status StreamWriter::begin_step(StepId step) {
  if (closed_) {
    return make_error(ErrorCode::kFailedPrecondition, "writer closed");
  }
  if (in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "step already open");
  }
  if (step <= last_step_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "step ids must strictly increase");
  }
  if (bp_) FLEXIO_RETURN_IF_ERROR(bp_->begin_step(step));
  in_step_ = true;
  step_ = step;
  my_blocks_.clear();
  my_payloads_.clear();
  return Status::ok();
}

Status StreamWriter::write(const adios::VarMeta& meta, ByteView payload) {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "write outside step");
  }
  FLEXIO_RETURN_IF_ERROR(meta.validate());
  if (payload.size() != meta.payload_bytes()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "payload size does not match metadata of " + meta.name);
  }
  PerfMonitor::ScopedTimer t(&monitor_, "write.pack");
  if (bp_) return bp_->write(meta, payload);

  for (const wire::BlockInfo& existing : my_blocks_) {
    if (existing.meta.name == meta.name) {
      return make_error(ErrorCode::kAlreadyExists,
                        "variable written twice this step: " + meta.name);
    }
  }
  wire::BlockInfo block;
  block.writer_rank = rank_;
  block.meta = meta;
  if (meta.shape == adios::ShapeKind::kScalar) {
    block.scalar_payload.assign(payload.begin(), payload.end());
    my_blocks_.push_back(std::move(block));
    my_payloads_.emplace_back();
  } else {
    my_blocks_.push_back(std::move(block));
    my_payloads_.emplace_back(payload.begin(), payload.end());
  }
  monitor_.add_count("bytes.written", payload.size());
  return Status::ok();
}

Status StreamWriter::write_scalar(const std::string& name, double value) {
  return write(adios::scalar_var(name, serial::DataType::kDouble),
               ByteView(reinterpret_cast<const std::byte*>(&value),
                        sizeof value));
}

Status StreamWriter::write_scalar(const std::string& name,
                                  std::int64_t value) {
  return write(adios::scalar_var(name, serial::DataType::kInt64),
               ByteView(reinterpret_cast<const std::byte*>(&value),
                        sizeof value));
}

Status StreamWriter::end_step() {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "no step open");
  }
  const Status st = bp_ ? end_step_file() : end_step_stream();
  if (st.is_ok()) {
    last_step_ = step_;
    ++steps_completed_;
    in_step_ = false;
  }
  return st;
}

Status StreamWriter::end_step_file() {
  PerfMonitor::ScopedTimer t(&monitor_, "write.file_flush");
  return bp_->end_step();
}

Status StreamWriter::run_handshake(bool* did_exchange) {
  trace::Span span("writer.handshake");
  using xml::CachingLevel;
  const CachingLevel caching = spec_.method.caching;
  const bool first = steps_completed_ == 0;

  // Membership: the coordinator reads the directory's view once per step
  // and broadcasts it, so every writer rank observes the *same* epoch (a
  // per-rank read could straddle a change and split the collective). A
  // step epoch that differs from the one the cached handshake was
  // exchanged under forces the full re-exchange below, whatever the
  // caching level says.
  std::uint64_t step_epoch = 0;
  bool epoch_changed = false;
  if (membership_) {
    std::vector<std::byte> view_raw;
    if (rank_ == Program::kCoordinator) {
      const evpath::MembershipView view =
          rt_->directory().membership(spec_.stream);
      wire::MembershipUpdate upd;
      upd.stream = spec_.stream;
      upd.epoch = view.epoch;
      for (const evpath::Member& m : view.members) {
        upd.members.push_back(wire::MemberInfo{
            m.rank, m.contact, m.incarnation,
            static_cast<std::uint8_t>(m.state), m.join_epoch});
      }
      view_raw = wire::encode(upd);
    }
    FLEXIO_RETURN_IF_ERROR(program_->broadcast(rank_, &view_raw, timeout_));
    auto upd = wire::decode_membership_update(ByteView(view_raw));
    if (!upd.is_ok()) return upd.status();
    member_update_ = std::move(upd).value();
    have_members_ = true;
    step_epoch = member_update_.epoch;
    epoch_changed = !first && step_epoch != planned_epoch_;
    if (epoch_changed) monitor_.add_count("membership.replans", 1);
  }

  // Step 1.s: gather local distributions at the coordinator, unless the
  // local side is cached (CACHING_LOCAL and CACHING_ALL skip it).
  const bool do_gather = first || epoch_changed || caching == CachingLevel::kNone;
  if (do_gather) {
    PerfMonitor::ScopedTimer t(&monitor_, "handshake.gather");
    wire::StepAnnounce mine;
    mine.step = step_;
    mine.blocks = my_blocks_;
    std::vector<std::vector<std::byte>> all;
    FLEXIO_RETURN_IF_ERROR(
        program_->gather(rank_, ByteView(wire::encode(mine)), &all, timeout_));
    if (rank_ == Program::kCoordinator) {
      cached_all_blocks_.clear();
      for (const auto& raw : all) {
        if (raw.empty()) continue;  // inactive rank slot (elastic gather)
        auto ann = wire::decode_step_announce(ByteView(raw));
        if (!ann.is_ok()) return ann.status();
        for (auto& b : ann.value().blocks) {
          cached_all_blocks_.push_back(std::move(b));
        }
      }
    }
  } else {
    monitor_.add_count("handshake.gather_skipped", 1);
  }

  // Steps 2+3: exchange with the peer side, unless fully cached. An epoch
  // change always re-exchanges: the merged request must be rebuilt from
  // the surviving readers and the joiners.
  const bool do_exchange = first || epoch_changed || caching != CachingLevel::kAll;
  *did_exchange = do_exchange;
  if (do_exchange) {
    PerfMonitor::ScopedTimer t(&monitor_, "handshake.exchange");
    std::vector<std::byte> request_raw;
    if (rank_ == Program::kCoordinator) {
      if (epoch_changed) {
        // Ship the view behind the new epoch ahead of the announce (same
        // FIFO link), so the reader coordinator can admit joiners and
        // excise the departed without consulting the directory itself.
        FLEXIO_RETURN_IF_ERROR(channel_->send(
            reader_coord_, ByteView(wire::encode(member_update_))));
      }
      wire::StepAnnounce ann;
      ann.step = step_;
      ann.blocks = cached_all_blocks_;
      ann.trace = wire::TraceContext{stream_id_, step_, step_span_id_,
                                     metrics::now_ns()};
      if (membership_) ann.membership_epoch = step_epoch;
      FLEXIO_RETURN_IF_ERROR(
          channel_->send(reader_coord_, ByteView(wire::encode(ann))));
      evpath::Message msg;
      FLEXIO_RETURN_IF_ERROR(
          channel_->recv_from(reader_coord_, &msg, timeout_));
      if (msg.eos) {
        return make_error(ErrorCode::kEndOfStream,
                          "reader disappeared mid-stream");
      }
      request_raw = std::move(msg.payload);
    }
    // Step 3: broadcast the peer-side distribution (the read request) so
    // every writer rank can compute its mapping independently.
    FLEXIO_RETURN_IF_ERROR(
        program_->broadcast(rank_, &request_raw, timeout_));
    auto req = wire::decode_read_request(ByteView(request_raw));
    if (!req.is_ok()) return req.status();
    cached_request_ = std::move(req).value();
    have_cached_request_ = true;
    if (membership_) {
      // The reader echoes the announce's epoch back: the collective
      // agreement point. The new handshake state is valid for that epoch.
      planned_epoch_ = cached_request_.membership_epoch.value_or(step_epoch);
    }
    // Pair our receive clock with the reader's send clock; the merge tool
    // estimates the cross-process offset from these samples. Coordinator
    // only: other ranks see the request after a broadcast delay.
    if (rank_ == Program::kCoordinator && cached_request_.trace) {
      trace::clock_sample(cached_request_.trace->send_ns);
    }
    // The reader's request may have changed: the cached send plan is stale.
    have_cached_plan_ = false;
    monitor_.add_count("handshake.performed", 1);
    handshakes_performed_counter().inc();

    // Install any plug-ins that rode along with the request. An empty
    // source removes the plug-in: that is how the reader migrates a
    // codelet out of the simulation's address space at runtime.
    for (const wire::PluginInstall& p : cached_request_.plugins) {
      if (!p.run_at_writer) continue;
      if (p.source.empty()) {
        plugins_.erase(p.var);
        monitor_.add_count("plugin.removed", 1);
        continue;
      }
      PluginCompiler compiler = rt_->plugin_compiler();
      if (!compiler) {
        return make_error(ErrorCode::kUnimplemented,
                          "no plug-in compiler installed in runtime");
      }
      auto fn = compiler(p.source);
      if (!fn.is_ok()) return fn.status();
      plugins_[p.var] = std::move(fn).value();
      monitor_.add_count("plugin.installed", 1);
    }
  } else {
    monitor_.add_count("handshake.skipped", 1);
    handshakes_skipped_counter().inc();
  }
  if (!have_cached_request_) {
    return make_error(ErrorCode::kInternal, "no read request available");
  }
  return Status::ok();
}

void StreamWriter::rebuild_send_plan() {
  // Step 4.s: compute this rank's pieces, group them per receiving reader,
  // and bind each piece to its buffered payload once. write() guarantees
  // variable names are unique within a step, so the name alone keys the
  // (var, block) -> payload-index map.
  const std::vector<TransferPiece> mine =
      pieces_from_writer(plan_transfers(my_blocks_, cached_request_), rank_);
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < my_blocks_.size(); ++i) {
    index_of.emplace(my_blocks_[i].meta.name, i);
  }
  std::map<int, std::vector<PlannedPiece>> by_reader;
  for (const TransferPiece& p : mine) {
    const auto it = index_of.find(p.var);
    FLEXIO_CHECK(it != index_of.end());
    FLEXIO_CHECK(my_blocks_[it->second].meta.block == p.meta.block);
    by_reader[p.reader_rank].push_back(PlannedPiece{p, it->second});
  }
  cached_plan_.assign(by_reader.begin(), by_reader.end());
  have_cached_plan_ = true;
}

bool StreamWriter::plan_bindings_valid() const {
  // A cached plan only survives a step that wrote the same variables with
  // the same block geometry (the premise of CACHING_LOCAL/ALL). Cheap
  // re-validation catches an application that changes its output anyway.
  for (const auto& [reader, planned] : cached_plan_) {
    for (const PlannedPiece& pp : planned) {
      if (pp.block_index >= my_blocks_.size()) return false;
      const wire::BlockInfo& block = my_blocks_[pp.block_index];
      if (block.meta.name != pp.piece.var) return false;
      if (block.meta.block != pp.piece.meta.block) return false;
    }
  }
  return true;
}

// One pool task's worth of work: everything send_to_reader needs, decided
// serially in the dispatch prologue. `planned` points into cached_plan_,
// which no thread mutates while a batch is in flight.
struct StreamWriter::ReaderWork {
  int reader = 0;
  const std::vector<PlannedPiece>* planned = nullptr;
  std::string dest;
};

Status StreamWriter::send_pieces() {
  trace::Span span("writer.send_pieces");
  PerfMonitor::ScopedTimer t(&monitor_, "write.send");
  // Reuse the cached per-reader plan when neither side of the handshake
  // changed; otherwise recompute and rebind.
  if (have_cached_plan_ && !plan_bindings_valid()) have_cached_plan_ = false;
  if (have_cached_plan_) {
    plan_cache_hits_counter().inc();
    monitor_.add_count("plan.cache_hit", 1);
  } else {
    rebuild_send_plan();
    plan_cache_misses_counter().inc();
    monitor_.add_count("plan.cache_miss", 1);
  }

  // Serial prologue: membership gating mutates shared writer state (the
  // link-incarnation map, stale-link drops), so every dispatch decision is
  // made here, before any task can run. What remains per reader -- pack,
  // plug-in, send, tolerated-loss confirmation -- touches only read-only
  // writer state and thread-safe components (DESIGN.md "Parallel pack").
  std::vector<ReaderWork> work;
  work.reserve(cached_plan_.size());
  for (const auto& [reader, planned] : cached_plan_) {
    std::string dest =
        channel_->peer_name(spec_.stream, reader_program_, reader);
    if (membership_ && have_members_) {
      const wire::MemberInfo* mi = member_info(reader);
      if (mi == nullptr || mi->state != 0) {
        // The plan predates this rank's departure (it can only be stale by
        // part of a step: the next epoch-changed handshake re-plans over
        // the survivors). Drop its pieces instead of stalling the step.
        dropped_pieces_counter().add(planned.size());
        monitor_.add_count("membership.pieces_dropped", planned.size());
        continue;
      }
      const auto it = link_incarnation_.find(reader);
      if (it != link_incarnation_.end() && it->second != mi->incarnation) {
        // The rank respawned under the same name: the cached link points
        // at the dead incarnation's transport state.
        channel_->drop_link(dest);
      }
      link_incarnation_[reader] = mi->incarnation;
    }
    work.push_back(ReaderWork{reader, &planned, std::move(dest)});
  }

  // Per-task timing slots: disjoint indices, written by exactly one task
  // each, read after the batch joins (run_batch's completion wait is the
  // synchronization point).
  std::vector<std::uint64_t> task_pack_ns(work.size(), 0);
  std::vector<std::uint64_t> task_enqueue_ns(work.size(), 0);

  Status sent = Status::ok();
  if (pack_pool_ != nullptr && work.size() > 1) {
    // Each task inherits the submitting thread's trace identity so its
    // spans land in the writer's timeline, parented under this function's
    // span; first-error-wins across tasks, every task runs (a failing
    // reader must not suppress its siblings' sends).
    const trace::TaskContext tctx = trace::TaskContext::capture();
    std::vector<util::WorkPool::Task> tasks;
    tasks.reserve(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
      tasks.push_back([this, tctx, &work, &task_pack_ns, &task_enqueue_ns,
                       i]() -> Status {
        trace::TaskScope task_identity(tctx);
        return send_to_reader(work[i], &task_pack_ns[i], &task_enqueue_ns[i]);
      });
    }
    sent = pack_pool_->run_batch(std::move(tasks));
  } else {
    // Serial path: same tasks, same all-run + first-error-wins semantics,
    // executed inline in plan order.
    for (std::size_t i = 0; i < work.size(); ++i) {
      const Status st =
          send_to_reader(work[i], &task_pack_ns[i], &task_enqueue_ns[i]);
      if (sent.is_ok()) sent = st;
    }
  }
  if (!sent.is_ok()) return sent;

  // Phase attribution: the sum over tasks is the step's total pack work
  // (invariant across thread counts); the max is the parallel critical
  // path -- the pack time the step actually waits for.
  std::uint64_t pack_sum = 0;
  std::uint64_t pack_max = 0;
  std::uint64_t enqueue_sum = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    pack_sum += task_pack_ns[i];
    if (task_pack_ns[i] > pack_max) pack_max = task_pack_ns[i];
    enqueue_sum += task_enqueue_ns[i];
  }
  step_pack_hist().record(pack_sum);
  step_pack_critical_hist().record(pack_max);
  step_enqueue_hist().record(enqueue_sum);
  monitor_.add_count("phase.pack_ns", pack_sum);
  monitor_.add_count("phase.pack_critical_ns", pack_max);
  monitor_.add_count("phase.enqueue_ns", enqueue_sum);
  return Status::ok();
}

Status StreamWriter::send_to_reader(const ReaderWork& work,
                                    std::uint64_t* pack_ns,
                                    std::uint64_t* enqueue_ns) {
  trace::Span span("writer.pack_task");
  const std::vector<PlannedPiece>& planned = *work.planned;
  const auto send_mode = spec_.method.async_writes ? evpath::SendMode::kAsync
                                                   : evpath::SendMode::kSync;
  std::vector<wire::DataPiece> packed;
  packed.reserve(planned.size());
  for (const PlannedPiece& pp : planned) {
    const TransferPiece& p = pp.piece;
    const wire::BlockInfo& block = my_blocks_[pp.block_index];
    const std::vector<std::byte>& payload = my_payloads_[pp.block_index];
    wire::DataPiece piece;
    piece.meta = block.meta;
    piece.region = p.region;
    if (p.whole_block) {
      // Borrow the buffered block: the bytes flow straight from
      // my_payloads_ into the transport at encode time. Safe because
      // every transport finishes its copy inside send and the buffer
      // lives until the next begin_step.
      piece.borrowed = ByteView(payload);
    } else {
      // Pack the overlap region densely.
      const std::uint64_t pack_start = metrics::now_ns();
      const std::size_t elem = serial::size_of(block.meta.type);
      piece.payload.resize(p.region.elements() * elem);
      adios::copy_region(block.meta.block, payload.data(), p.region,
                         piece.payload.data(), p.region, elem);
      *pack_ns += metrics::now_ns() - pack_start;
    }
    // Writer-side DC plug-in, if deployed against this variable. Plug-ins
    // may run concurrently against different pieces; they transform their
    // input and must not mutate shared state (DESIGN.md "Parallel pack").
    const auto plug = plugins_.find(p.var);
    if (plug != plugins_.end()) {
      PerfMonitor::ScopedTimer pt(&monitor_, "plugin.exec");
      piece.materialize();  // plug-ins consume owned payload bytes
      auto transformed = plug->second(piece);
      if (!transformed.is_ok()) return transformed.status();
      piece = std::move(transformed).value();
      monitor_.add_count("plugin.pieces", 1);
    }
    packed.push_back(std::move(piece));
  }
  auto send_batch = [&](std::vector<wire::DataPiece> pieces) -> Status {
    wire::DataMsg msg;
    msg.step = step_;
    msg.writer_rank = rank_;
    msg.pieces = std::move(pieces);
    msg.trace = wire::TraceContext{stream_id_, step_, step_span_id_,
                                   metrics::now_ns()};
    std::uint64_t bytes = 0;
    for (const auto& p : msg.pieces) bytes += p.bytes().size();
    monitor_.add_count("bytes.sent", bytes);
    monitor_.add_count("msgs.sent", 1);
    stream_bytes_sent_counter().add(bytes);
    // Scatter-gather framing: header slices interleaved with borrowed
    // payload views; transports gather them without a flat intermediate.
    const serial::IovMessage iov = wire::encode_data_iov(msg);
    const std::uint64_t enqueue_start = metrics::now_ns();
    const Status st = channel_->send_iov(work.dest, iov.frags, send_mode);
    *enqueue_ns += metrics::now_ns() - enqueue_start;
    return st;
  };
  Status sent = Status::ok();
  if (spec_.method.batching) {
    sent = send_batch(std::move(packed));
    if (sent.is_ok()) monitor_.add_count("msgs.batched", 1);
  } else {
    for (auto& piece : packed) {
      std::vector<wire::DataPiece> one;
      one.push_back(std::move(piece));
      sent = send_batch(std::move(one));
      if (!sent.is_ok()) break;
    }
  }
  if (!sent.is_ok()) {
    // A reader that dies mid-step takes its links down with it; the
    // transports fast-fail instead of wedging the writer. Tolerate the
    // loss only once the failure detector corroborates it -- anything
    // else is a real transport error. confirm_reader_gone only reads
    // shared state (directory polls + link-incarnation lookups), so a
    // pool task may block in it while its siblings keep sending.
    const bool reader_loss = sent.code() == ErrorCode::kUnavailable ||
                             sent.code() == ErrorCode::kNotFound ||
                             sent.code() == ErrorCode::kTimeout;
    if (!membership_ || !reader_loss || !confirm_reader_gone(work.reader)) {
      return sent;
    }
    channel_->drop_link(work.dest);
    dropped_pieces_counter().add(planned.size());
    monitor_.add_count("membership.pieces_dropped", planned.size());
  }
  return Status::ok();
}

const wire::MemberInfo* StreamWriter::member_info(int reader_rank) const {
  if (!have_members_) return nullptr;
  for (const wire::MemberInfo& m : member_update_.members) {
    if (m.rank == reader_rank) return &m;
  }
  return nullptr;
}

bool StreamWriter::confirm_reader_gone(int reader_rank) {
  // The step was planned while the rank was still alive, then a send to it
  // failed. Its heartbeats stop with it, so within ~TTL the directory
  // declares it dead (or its graceful leave / respawn has already landed).
  const auto ttl = rt_->directory().membership_options().ttl;
  const auto deadline = std::chrono::steady_clock::now() + 2 * ttl +
                        std::chrono::milliseconds(200);
  const auto it = link_incarnation_.find(reader_rank);
  for (;;) {
    const evpath::MembershipView view =
        rt_->directory().membership(spec_.stream);
    const evpath::Member* m = view.find(reader_rank);
    if (m == nullptr || m->state != evpath::MemberState::kAlive ||
        (it != link_incarnation_.end() && m->incarnation != it->second)) {
      return true;
    }
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status StreamWriter::end_step_stream() {
  // The scope annotates every span ending inside this step (handshake,
  // send_pieces, the step span itself) with {stream, step}; the span id is
  // what the wire trace context ships so the reader can parent under it.
  trace::StepScope step_scope(stream_id_, step_);
  trace::Span span("writer.end_step");
  step_span_id_ = span.id();
  bool did_exchange = false;
  FLEXIO_RETURN_IF_ERROR(run_handshake(&did_exchange));
  return send_pieces();
}

wire::MonitorReport StreamWriter::build_report() const {
  wire::MonitorReport r;
  r.steps = steps_completed_;
  r.bytes_sent = monitor_.count("bytes.sent");
  r.pack_seconds = monitor_.total_time("write.pack");
  r.handshake_seconds = monitor_.total_time("handshake.gather") +
                        monitor_.total_time("handshake.exchange");
  r.send_seconds = monitor_.total_time("write.send");
  r.handshakes_performed = monitor_.count("handshake.performed");
  r.handshakes_skipped = monitor_.count("handshake.skipped");
  r.pack_ns = monitor_.count("phase.pack_ns");
  r.enqueue_ns = monitor_.count("phase.enqueue_ns");
  r.phase_steps = steps_completed_;
  return r;
}

Status StreamWriter::close() {
  trace::Span span("writer.close");
  if (closed_) return Status::ok();
  if (in_step_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "close with an open step");
  }
  closed_ = true;
  if (bp_) return bp_->close();
  // Ensure every rank finished sending before announcing the close.
  FLEXIO_RETURN_IF_ERROR(program_->barrier(rank_, timeout_));
  if (rank_ == Program::kCoordinator) {
    // Ship writer-side monitoring to the analytics side, then EOS. A
    // reader that already exited cannot receive either; that is not a
    // writer-side failure.
    Status st = channel_->send(reader_coord_,
                               ByteView(wire::encode(build_report())));
    if (st.is_ok()) {
      st = channel_->send(reader_coord_,
                          ByteView(wire::encode_close(last_step_)));
    }
    if (!st.is_ok() && st.code() != ErrorCode::kUnavailable) return st;
    FLEXIO_RETURN_IF_ERROR(rt_->directory().unregister_stream(spec_.stream));
  }
  // Drain the data links before the writer's buffers go away: closing an
  // RDMA link blocks until every in-flight rendezvous transfer has been
  // fetched and acked by its reader (Section II.E buffer ownership).
  for (int r = 0; r < reader_size_; ++r) {
    if (membership_ && have_members_) {
      // Departed ranks have nothing left to drain (their pieces were
      // dropped); their links would only fast-fail.
      const wire::MemberInfo* mi = member_info(r);
      if (mi == nullptr || mi->state != 0) continue;
    }
    const Status st = channel_->close_to(
        channel_->peer_name(spec_.stream, reader_program_, r));
    // kNotFound: we never sent to that rank. kUnavailable: the reader is
    // already gone, so there is nothing left to drain.
    if (!st.is_ok() && st.code() != ErrorCode::kNotFound &&
        st.code() != ErrorCode::kUnavailable) {
      return st;
    }
  }
  return Status::ok();
}

}  // namespace flexio
