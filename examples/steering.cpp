// Computational steering through a feedback stream.
//
// FlexIO streams are symmetric: nothing stops the analytics program from
// *writing* a stream the simulation reads. This example closes the loop
// the paper's runtime management hints at (Section II.G): the simulation
// publishes its state each step; the analytics watch a diagnostic and
// steer a simulation parameter back through a second stream.
#include <cmath>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "core/stream_reader.h"
#include "core/stream_writer.h"

using namespace flexio;

namespace {
constexpr int kSteps = 6;
constexpr std::uint64_t kCells = 64;
}  // namespace

int main() {
  Runtime rt;
  Program sim("sim", 1), ctrl("controller", 1);

  std::thread simulation([&] {
    StreamSpec out_spec;
    out_spec.stream = "state";
    out_spec.endpoint = EndpointSpec{&sim, 0, {0, 0}};
    out_spec.method.method = "FLEXIO";
    auto out = rt.open_writer(out_spec);
    FLEXIO_CHECK(out.is_ok());
    StreamSpec in_spec;
    in_spec.stream = "control";
    in_spec.endpoint = EndpointSpec{&sim, 0, {0, 0}};
    in_spec.method.method = "FLEXIO";
    auto feedback = rt.open_reader(in_spec);
    FLEXIO_CHECK(feedback.is_ok());

    // A diffusion-ish field whose damping coefficient is steered online.
    std::vector<double> field(kCells);
    for (std::uint64_t i = 0; i < kCells; ++i) {
      field[i] = std::sin(0.3 * static_cast<double>(i)) * 10.0;
    }
    double damping = 0.02;
    for (int step = 0; step < kSteps; ++step) {
      for (double& v : field) v *= (1.0 - damping);
      FLEXIO_CHECK(out.value()->begin_step(step).is_ok());
      FLEXIO_CHECK(out.value()
                       ->write(adios::global_array_var(
                                   "field", serial::DataType::kDouble,
                                   {kCells}, adios::Box{{0}, {kCells}}),
                               as_bytes_view(std::span<const double>(field)))
                       .is_ok());
      FLEXIO_CHECK(out.value()->write_scalar("damping", damping).is_ok());
      FLEXIO_CHECK(out.value()->end_step().is_ok());

      // Apply the controller's response before the next step.
      auto fb_step = feedback.value()->begin_step();
      FLEXIO_CHECK(fb_step.is_ok());
      FLEXIO_CHECK(feedback.value()->perform_reads().is_ok());
      const double new_damping =
          feedback.value()->scalar_double("damping").value();
      FLEXIO_CHECK(feedback.value()->end_step().is_ok());
      std::printf("[sim] step %d: damping %.4f -> %.4f (steered)\n", step,
                  damping, new_damping);
      damping = new_damping;
    }
    FLEXIO_CHECK(out.value()->close().is_ok());
  });

  std::thread controller([&] {
    StreamSpec in_spec;
    in_spec.stream = "state";
    in_spec.endpoint = EndpointSpec{&ctrl, 0, {2, 0}};
    in_spec.method.method = "FLEXIO";
    auto in = rt.open_reader(in_spec);
    FLEXIO_CHECK(in.is_ok());
    StreamSpec out_spec;
    out_spec.stream = "control";
    out_spec.endpoint = EndpointSpec{&ctrl, 0, {2, 0}};
    out_spec.method.method = "FLEXIO";
    auto out = rt.open_writer(out_spec);
    FLEXIO_CHECK(out.is_ok());

    std::vector<double> field(kCells);
    const double target_energy = 500.0;
    for (;;) {
      auto step = in.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      FLEXIO_CHECK(step.is_ok());
      FLEXIO_CHECK(in.value()
                       ->schedule_read("field", adios::Box{{0}, {kCells}},
                                       MutableByteView(std::as_writable_bytes(
                                           std::span<double>(field))))
                       .is_ok());
      FLEXIO_CHECK(in.value()->perform_reads().is_ok());
      const double damping = in.value()->scalar_double("damping").value();
      FLEXIO_CHECK(in.value()->end_step().is_ok());

      // Diagnostic: field energy. Steer damping toward the target.
      double energy = 0;
      for (double v : field) energy += v * v;
      const double new_damping =
          energy > target_energy ? damping * 1.5 : damping * 0.7;
      std::printf("[controller] step %lld: energy %.1f -> damping %.4f\n",
                  static_cast<long long>(step.value()), energy, new_damping);
      FLEXIO_CHECK(out.value()->begin_step(step.value()).is_ok());
      FLEXIO_CHECK(out.value()->write_scalar("damping", new_damping).is_ok());
      FLEXIO_CHECK(out.value()->end_step().is_ok());
    }
    FLEXIO_CHECK(out.value()->close().is_ok());
  });

  simulation.join();
  controller.join();
  return 0;
}
