// Tests for the ADIOS-like layer: box algebra, region copies, variable
// metadata, and the BP-like file engine.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "adios/array.h"
#include "adios/bp_file.h"
#include "adios/describe.h"
#include "adios/var.h"
#include "util/rng.h"

namespace flexio::adios {
namespace {

using serial::DataType;

TEST(ArrayTest, VolumeAndToString) {
  EXPECT_EQ(volume({}), 1u);
  EXPECT_EQ(volume({5}), 5u);
  EXPECT_EQ(volume({4, 7, 2}), 56u);
  EXPECT_EQ(dims_to_string({4, 7, 2}), "[4x7x2]");
}

TEST(ArrayTest, IntersectBasics) {
  Box a{{0, 0}, {10, 10}};
  Box b{{5, 5}, {10, 10}};
  Box out;
  ASSERT_TRUE(intersect(a, b, &out));
  EXPECT_EQ(out, (Box{{5, 5}, {5, 5}}));
  Box c{{10, 0}, {5, 5}};  // touching edge = disjoint (half-open boxes)
  EXPECT_FALSE(intersect(a, c, &out));
}

TEST(ArrayTest, ContainsAndFlatIndex) {
  Box outer{{2, 3}, {4, 5}};
  EXPECT_TRUE(contains(outer, Box{{3, 4}, {1, 2}}));
  EXPECT_FALSE(contains(outer, Box{{0, 0}, {1, 1}}));
  EXPECT_FALSE(contains(outer, Box{{5, 7}, {2, 2}}));
  EXPECT_EQ(flat_index(outer, {2, 3}), 0u);
  EXPECT_EQ(flat_index(outer, {2, 4}), 1u);
  EXPECT_EQ(flat_index(outer, {3, 3}), 5u);
}

TEST(ArrayTest, BlockDecomposeCoversWithoutOverlap) {
  const Dims global{17, 4};
  std::uint64_t covered = 0;
  std::uint64_t prev_end = 0;
  for (int p = 0; p < 5; ++p) {
    const Box b = block_decompose(global, 5, p, 0);
    EXPECT_EQ(b.offset[0], prev_end);
    prev_end = b.offset[0] + b.count[0];
    covered += b.elements();
    EXPECT_EQ(b.count[1], 4u);
  }
  EXPECT_EQ(prev_end, 17u);
  EXPECT_EQ(covered, volume(global));
}

TEST(ArrayTest, CopyRegion2D) {
  // Source block: rows 0..3 of a 4x4 global; dest block: rows 2..5.
  Box src_box{{0, 0}, {4, 4}};
  Box dst_box{{2, 0}, {4, 4}};
  std::vector<double> src(16);
  std::iota(src.begin(), src.end(), 0.0);  // global (r,c) = r*4+c
  std::vector<double> dst(16, -1.0);
  Box region{{2, 1}, {2, 3}};  // overlap rows 2-3, cols 1-3
  copy_region(src_box, reinterpret_cast<const std::byte*>(src.data()), dst_box,
              reinterpret_cast<std::byte*>(dst.data()), region,
              sizeof(double));
  // Global (2,1)=9 lands at dst local (0,1).
  EXPECT_DOUBLE_EQ(dst[1], 9.0);
  EXPECT_DOUBLE_EQ(dst[2], 10.0);
  EXPECT_DOUBLE_EQ(dst[3], 11.0);
  EXPECT_DOUBLE_EQ(dst[5], 13.0);
  EXPECT_DOUBLE_EQ(dst[0], -1.0);  // untouched
  EXPECT_DOUBLE_EQ(dst[4], -1.0);
}

TEST(ArrayTest, CopyRegionScalarAnd1D) {
  Box sbox{{3}, {5}};
  Box dbox{{0}, {10}};
  std::vector<int> src{30, 31, 32, 33, 34};
  std::vector<int> dst(10, 0);
  copy_region(sbox, reinterpret_cast<const std::byte*>(src.data()), dbox,
              reinterpret_cast<std::byte*>(dst.data()), Box{{4}, {3}},
              sizeof(int));
  EXPECT_EQ(dst[4], 31);
  EXPECT_EQ(dst[5], 32);
  EXPECT_EQ(dst[6], 33);
  EXPECT_EQ(dst[3], 0);
}

// Property: scatter a global array across P writers, gather any random
// selection via copy_region, and every element matches the global truth.
class RegionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RegionPropertyTest, ScatterGatherMatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  const Dims global{1 + rng.next_below(20), 1 + rng.next_below(20),
                    1 + rng.next_below(8)};
  auto value_at = [&](std::uint64_t r, std::uint64_t c, std::uint64_t z) {
    return static_cast<double>(r * 10000 + c * 100 + z);
  };
  // Writers: block decomposition along dim 0.
  const int parts = 1 + static_cast<int>(rng.next_below(5));
  struct WriterBlock {
    Box box;
    std::vector<double> data;
  };
  std::vector<WriterBlock> writers;
  for (int p = 0; p < parts; ++p) {
    WriterBlock wb;
    wb.box = block_decompose(global, parts, p, 0);
    wb.data.resize(wb.box.elements());
    std::size_t i = 0;
    for (std::uint64_t r = 0; r < wb.box.count[0]; ++r) {
      for (std::uint64_t c = 0; c < wb.box.count[1]; ++c) {
        for (std::uint64_t z = 0; z < wb.box.count[2]; ++z) {
          wb.data[i++] = value_at(wb.box.offset[0] + r, wb.box.offset[1] + c,
                                  wb.box.offset[2] + z);
        }
      }
    }
    writers.push_back(std::move(wb));
  }
  // Random selection.
  Box sel;
  sel.offset.resize(3);
  sel.count.resize(3);
  for (int d = 0; d < 3; ++d) {
    const auto du = static_cast<std::size_t>(d);
    sel.offset[du] = rng.next_below(global[du]);
    sel.count[du] = 1 + rng.next_below(global[du] - sel.offset[du]);
  }
  std::vector<double> out(sel.elements(), -1.0);
  for (const WriterBlock& wb : writers) {
    Box overlap;
    if (!intersect(wb.box, sel, &overlap)) continue;
    copy_region(wb.box, reinterpret_cast<const std::byte*>(wb.data.data()),
                sel, reinterpret_cast<std::byte*>(out.data()), overlap,
                sizeof(double));
  }
  std::size_t i = 0;
  for (std::uint64_t r = 0; r < sel.count[0]; ++r) {
    for (std::uint64_t c = 0; c < sel.count[1]; ++c) {
      for (std::uint64_t z = 0; z < sel.count[2]; ++z) {
        ASSERT_DOUBLE_EQ(out[i++],
                         value_at(sel.offset[0] + r, sel.offset[1] + c,
                                  sel.offset[2] + z));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertyTest, ::testing::Range(0, 20));

// Oracle for the iterative pack kernel: an element-wise reference copy via
// flat_index must agree with copy_region for every shape the planner can
// produce -- 0-d scalars through 4-d blocks, degenerate count-1 dimensions
// (which the kernel coalesces away), full-block regions (single-memcpy fast
// path), and single-element regions.
class CopyRegionOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(CopyRegionOracleTest, MatchesElementwiseReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const std::size_t ndim = rng.next_below(5);  // 0-d through 4-d
  // 0: random margins, 1: region == src box (full block), 2: single element.
  const int shape = static_cast<int>(rng.next_below(3));
  Box region, src, dst;
  region.offset.resize(ndim);
  region.count.resize(ndim);
  src.offset.resize(ndim);
  src.count.resize(ndim);
  dst.offset.resize(ndim);
  dst.count.resize(ndim);
  for (std::size_t d = 0; d < ndim; ++d) {
    region.offset[d] = rng.next_below(5);
    // next_below(5) makes degenerate count-1 dims common on their own, but
    // force at least probabilistic coverage of all-1 regions via shape 2.
    region.count[d] = shape == 2 ? 1 : 1 + rng.next_below(5);
    if (shape == 1) {  // full block: region covers src exactly
      src.offset[d] = region.offset[d];
      src.count[d] = region.count[d];
    } else {
      const std::uint64_t lo_s = rng.next_below(3);
      const std::uint64_t hi_s = rng.next_below(3);
      src.offset[d] = region.offset[d] - std::min(region.offset[d], lo_s);
      src.count[d] = region.offset[d] - src.offset[d] + region.count[d] + hi_s;
    }
    const std::uint64_t lo_d = rng.next_below(3);
    const std::uint64_t hi_d = rng.next_below(3);
    dst.offset[d] = region.offset[d] - std::min(region.offset[d], lo_d);
    dst.count[d] = region.offset[d] - dst.offset[d] + region.count[d] + hi_d;
  }
  ASSERT_TRUE(contains(src, region));
  ASSERT_TRUE(contains(dst, region));

  std::vector<std::uint32_t> a(src.elements());
  std::iota(a.begin(), a.end(), 1u);
  std::vector<std::uint32_t> got(dst.elements(), 0xdeadbeefu);
  std::vector<std::uint32_t> want = got;

  copy_region(src, reinterpret_cast<const std::byte*>(a.data()), dst,
              reinterpret_cast<std::byte*>(got.data()), region,
              sizeof(std::uint32_t));

  // Element-wise reference walk over the region's coordinates.
  Dims coord = region.offset;
  for (std::uint64_t i = 0; i < region.elements(); ++i) {
    want[flat_index(dst, coord)] = a[flat_index(src, coord)];
    for (std::size_t d = ndim; d-- > 0;) {
      if (++coord[d] < region.offset[d] + region.count[d]) break;
      coord[d] = region.offset[d];
    }
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyRegionOracleTest, ::testing::Range(0, 60));

TEST(VarMetaTest, ValidationRules) {
  EXPECT_TRUE(scalar_var("s", DataType::kDouble).validate().is_ok());
  EXPECT_TRUE(
      local_array_var("l", DataType::kInt32, {10, 7}).validate().is_ok());
  EXPECT_TRUE(global_array_var("g", DataType::kDouble, {100},
                               Box{{10}, {20}})
                  .validate()
                  .is_ok());
  // Unnamed.
  EXPECT_FALSE(scalar_var("", DataType::kDouble).validate().is_ok());
  // String-typed array payloads are not allowed.
  EXPECT_FALSE(
      local_array_var("l", DataType::kString, {4}).validate().is_ok());
  // Block escaping global space.
  EXPECT_FALSE(global_array_var("g", DataType::kDouble, {100},
                                Box{{90}, {20}})
                   .validate()
                   .is_ok());
  // Dim mismatch.
  EXPECT_FALSE(global_array_var("g", DataType::kDouble, {100, 2},
                                Box{{90}, {5}})
                   .validate()
                   .is_ok());
}

TEST(VarMetaTest, EncodeDecodeRoundTrip) {
  const VarMeta m = global_array_var("zion", DataType::kDouble, {1000, 7},
                                     Box{{100, 0}, {50, 7}});
  serial::BufWriter w;
  m.encode(&w);
  serial::BufReader r(w.view());
  auto out = VarMeta::decode(&r);
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value(), m);
  EXPECT_EQ(out.value().payload_bytes(), 50u * 7u * 8u);
}

class BpFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/bp_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(BpFileTest, SingleWriterRoundTrip) {
  auto writer = BpWriter::create(dir_, "particles", 0, 1);
  ASSERT_TRUE(writer.is_ok()) << writer.status().to_string();
  std::vector<double> data(14);
  std::iota(data.begin(), data.end(), 0.0);
  const VarMeta meta = local_array_var("zion", DataType::kDouble, {2, 7});
  ASSERT_TRUE(writer.value()->begin_step(0).is_ok());
  ASSERT_TRUE(writer.value()
                  ->write(meta, as_bytes_view(std::span<const double>(data)))
                  .is_ok());
  ASSERT_TRUE(writer.value()->end_step().is_ok());
  ASSERT_TRUE(writer.value()->close().is_ok());

  auto reader = BpReader::open(dir_, "particles");
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  EXPECT_EQ(reader.value()->num_writers(), 1);
  EXPECT_EQ(reader.value()->steps(), std::vector<StepId>{0});
  auto blocks = reader.value()->inquire(0, "zion");
  ASSERT_TRUE(blocks.is_ok());
  ASSERT_EQ(blocks.value().size(), 1u);
  EXPECT_EQ(blocks.value()[0].meta, meta);
  std::vector<double> out(14);
  ASSERT_TRUE(reader.value()
                  ->read_block(blocks.value()[0],
                               MutableByteView(std::as_writable_bytes(
                                   std::span<double>(out))))
                  .is_ok());
  EXPECT_EQ(out, data);
}

TEST_F(BpFileTest, MultiWriterGlobalArraySelection) {
  const Dims global{12, 5};
  constexpr int kWriters = 3;
  for (int rank = 0; rank < kWriters; ++rank) {
    auto writer = BpWriter::create(dir_, "field", rank, kWriters);
    ASSERT_TRUE(writer.is_ok());
    const Box box = block_decompose(global, kWriters, rank, 0);
    std::vector<double> data(box.elements());
    std::size_t i = 0;
    for (std::uint64_t r = 0; r < box.count[0]; ++r) {
      for (std::uint64_t c = 0; c < box.count[1]; ++c) {
        data[i++] = static_cast<double>((box.offset[0] + r) * 100 + c);
      }
    }
    const VarMeta meta =
        global_array_var("T", DataType::kDouble, global, box);
    for (StepId step : {0, 1}) {
      ASSERT_TRUE(writer.value()->begin_step(step).is_ok());
      ASSERT_TRUE(
          writer.value()
              ->write(meta, as_bytes_view(std::span<const double>(data)))
              .is_ok());
      ASSERT_TRUE(writer.value()->end_step().is_ok());
    }
    ASSERT_TRUE(writer.value()->close().is_ok());
  }

  auto reader = BpReader::open(dir_, "field");
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  EXPECT_EQ(reader.value()->steps(), (std::vector<StepId>{0, 1}));
  // Selection spanning all three writer blocks.
  const Box sel{{2, 1}, {8, 3}};
  std::vector<double> out(sel.elements());
  ASSERT_TRUE(reader.value()
                  ->read_global(1, "T", sel,
                                MutableByteView(std::as_writable_bytes(
                                    std::span<double>(out))))
                  .is_ok());
  std::size_t i = 0;
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(out[i++], static_cast<double>((2 + r) * 100 + 1 + c));
    }
  }
}

TEST_F(BpFileTest, StepSequencingEnforced) {
  auto writer = BpWriter::create(dir_, "s", 0, 1);
  ASSERT_TRUE(writer.is_ok());
  BpWriter& w = *writer.value();
  double x = 1.0;
  const VarMeta meta = scalar_var("x", DataType::kDouble);
  const auto payload = ByteView(reinterpret_cast<const std::byte*>(&x), 8);
  EXPECT_FALSE(w.write(meta, payload).is_ok());  // write before begin_step
  ASSERT_TRUE(w.begin_step(3).is_ok());
  EXPECT_FALSE(w.begin_step(4).is_ok());  // nested step
  ASSERT_TRUE(w.write(meta, payload).is_ok());
  EXPECT_FALSE(w.close().is_ok());  // close with open step
  ASSERT_TRUE(w.end_step().is_ok());
  EXPECT_FALSE(w.begin_step(3).is_ok());  // non-increasing step
  EXPECT_FALSE(w.begin_step(2).is_ok());
  ASSERT_TRUE(w.begin_step(7).is_ok());
  ASSERT_TRUE(w.end_step().is_ok());
  ASSERT_TRUE(w.close().is_ok());
  EXPECT_TRUE(w.close().is_ok());  // idempotent
}

TEST_F(BpFileTest, PayloadSizeMismatchRejected) {
  auto writer = BpWriter::create(dir_, "s", 0, 1);
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer.value()->begin_step(0).is_ok());
  double x = 0;
  EXPECT_FALSE(writer.value()
                   ->write(local_array_var("a", DataType::kDouble, {4}),
                           ByteView(reinterpret_cast<const std::byte*>(&x), 8))
                   .is_ok());
}

TEST_F(BpFileTest, MissingStreamReported) {
  auto reader = BpReader::open(dir_, "nothing");
  EXPECT_EQ(reader.status().code(), ErrorCode::kNotFound);
}

TEST_F(BpFileTest, InquireMissingVarReported) {
  auto writer = BpWriter::create(dir_, "s", 0, 1);
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer.value()->begin_step(0).is_ok());
  ASSERT_TRUE(writer.value()->end_step().is_ok());
  ASSERT_TRUE(writer.value()->close().is_ok());
  auto reader = BpReader::open(dir_, "s");
  ASSERT_TRUE(reader.is_ok());
  EXPECT_EQ(reader.value()->inquire(0, "ghost").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(reader.value()->inquire(9, "x").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(BpFileTest, UncoveredSelectionReported) {
  auto writer = BpWriter::create(dir_, "s", 0, 1);
  ASSERT_TRUE(writer.is_ok());
  const Dims global{10};
  const Box box{{0}, {5}};  // only half the space written
  std::vector<double> data(5, 1.0);
  ASSERT_TRUE(writer.value()->begin_step(0).is_ok());
  ASSERT_TRUE(writer.value()
                  ->write(global_array_var("v", DataType::kDouble, global, box),
                          as_bytes_view(std::span<const double>(data)))
                  .is_ok());
  ASSERT_TRUE(writer.value()->end_step().is_ok());
  ASSERT_TRUE(writer.value()->close().is_ok());
  auto reader = BpReader::open(dir_, "s");
  ASSERT_TRUE(reader.is_ok());
  std::vector<double> out(10);
  EXPECT_EQ(reader.value()
                ->read_global(0, "v", Box{{0}, {10}},
                              MutableByteView(std::as_writable_bytes(
                                  std::span<double>(out))))
                .code(),
            ErrorCode::kOutOfRange);
}

TEST_F(BpFileTest, DescribeSummarizesStream) {
  for (int rank = 0; rank < 2; ++rank) {
    auto writer = BpWriter::create(dir_, "desc", rank, 2);
    ASSERT_TRUE(writer.is_ok());
    std::vector<double> data(5);
    std::iota(data.begin(), data.end(), rank * 10.0);
    ASSERT_TRUE(writer.value()->begin_step(0).is_ok());
    ASSERT_TRUE(writer.value()
                    ->write(global_array_var("T", DataType::kDouble, {10},
                                             block_decompose({10}, 2, rank, 0)),
                            as_bytes_view(std::span<const double>(data)))
                    .is_ok());
    const std::int64_t tag = 7 + rank;
    ASSERT_TRUE(writer.value()
                    ->write(scalar_var("tag", DataType::kInt64),
                            ByteView(reinterpret_cast<const std::byte*>(&tag),
                                     sizeof tag))
                    .is_ok());
    ASSERT_TRUE(writer.value()->end_step().is_ok());
    ASSERT_TRUE(writer.value()->close().is_ok());
  }
  auto reader = BpReader::open(dir_, "desc");
  ASSERT_TRUE(reader.is_ok());
  auto summaries = summarize_step(reader.value().get(), 0);
  ASSERT_TRUE(summaries.is_ok()) << summaries.status().to_string();
  ASSERT_EQ(summaries.value().size(), 2u);  // T + tag, name-sorted
  const VarSummary& t = summaries.value()[0];
  EXPECT_EQ(t.representative.name, "T");
  EXPECT_EQ(t.blocks, 2);
  EXPECT_EQ(t.elements, 10u);
  EXPECT_DOUBLE_EQ(t.min, 0.0);
  EXPECT_DOUBLE_EQ(t.max, 14.0);
  const VarSummary& tag = summaries.value()[1];
  EXPECT_DOUBLE_EQ(tag.min, 7.0);
  EXPECT_DOUBLE_EQ(tag.max, 8.0);

  auto text = describe(dir_, "desc");
  ASSERT_TRUE(text.is_ok());
  EXPECT_NE(text.value().find("2 writer(s), 1 step(s)"), std::string::npos);
  EXPECT_NE(text.value().find("global [10]"), std::string::npos);
  EXPECT_NE(text.value().find("scalar"), std::string::npos);
  EXPECT_FALSE(describe(dir_, "missing").is_ok());
}

TEST_F(BpFileTest, TruncatedSubfileDetected) {
  auto writer = BpWriter::create(dir_, "s", 0, 1);
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer.value()->begin_step(0).is_ok());
  ASSERT_TRUE(writer.value()->end_step().is_ok());
  // No close(): the end marker is missing (simulates a crashed writer).
  writer.value().reset();  // destructor closes politely, so instead:
  // Re-create the scenario by truncating the file.
  const std::string sub = bp_subfile_path(dir_, "s", 0);
  const auto size = std::filesystem::file_size(sub);
  std::filesystem::resize_file(sub, size - 1);
  auto reader = BpReader::open(dir_, "s");
  EXPECT_FALSE(reader.is_ok());
}

}  // namespace
}  // namespace flexio::adios
