// Hand-written lexer for CoD-mini.
#pragma once

#include "cod/token.h"
#include "util/status.h"

namespace flexio::cod {

/// Tokenize a whole source string. Errors carry line numbers. Supports
/// //-line and /* block */ comments.
StatusOr<std::vector<Token>> tokenize(std::string_view source);

}  // namespace flexio::cod
