#include "serial/buffer.h"

namespace flexio::serial {

void BufWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void BufWriter::put_string(std::string_view s) {
  put_varint(s.size());
  put_raw(s.data(), s.size());
}

void BufWriter::put_bytes(ByteView bytes) {
  put_varint(bytes.size());
  put_raw(bytes.data(), bytes.size());
}

Status BufReader::get_varint(std::uint64_t* v) {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t byte = 0;
    FLEXIO_RETURN_IF_ERROR(get_u8(&byte));
    if (shift >= 64 || (shift == 63 && (byte & 0x7e))) {
      return make_error(ErrorCode::kInvalidArgument, "varint overflow");
    }
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = result;
  return Status::ok();
}

Status BufReader::get_string(std::string* s) {
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(get_varint(&n));
  if (pos_ + n > data_.size()) {
    return make_error(ErrorCode::kOutOfRange, "string underrun");
  }
  s->assign(reinterpret_cast<const char*>(data_.data() + pos_),
            static_cast<std::size_t>(n));
  pos_ += n;
  return Status::ok();
}

IovMessage IovBuilder::finish() && {
  IovMessage out;
  out.header = w_.take();
  out.frags.reserve(splits_.size() * 2 + 1);
  const ByteView header(out.header);
  std::size_t prev = 0;
  for (const Split& s : splits_) {
    if (s.header_end > prev) {
      out.frags.push_back(header.subspan(prev, s.header_end - prev));
      prev = s.header_end;
    }
    if (!s.payload.empty()) out.frags.push_back(s.payload);
    out.total_bytes += s.payload.size();
  }
  if (header.size() > prev) {
    out.frags.push_back(header.subspan(prev));
  }
  out.total_bytes += header.size();
  return out;
}

Status BufReader::get_bytes(ByteView* bytes) {
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(get_varint(&n));
  return get_view(static_cast<std::size_t>(n), bytes);
}

}  // namespace flexio::serial
