#include "util/backoff.h"

#include <atomic>
#include <thread>

namespace flexio::util {

namespace {
std::atomic<Backoff::SleepFn> g_sleep{nullptr};
}  // namespace

Backoff::Backoff(BackoffPolicy policy)
    : policy_(policy), next_(policy.initial) {}

std::chrono::nanoseconds Backoff::next_delay() {
  const std::chrono::nanoseconds delay = next_ < policy_.max ? next_ : policy_.max;
  ++attempts_;
  const double grown =
      static_cast<double>(delay.count()) * policy_.multiplier;
  const double cap = static_cast<double>(policy_.max.count());
  next_ = std::chrono::nanoseconds(
      static_cast<std::int64_t>(grown < cap ? grown : cap));
  return delay;
}

void Backoff::sleep() { sleep_for(next_delay()); }

void Backoff::sleep_for(std::chrono::nanoseconds delay) {
  const SleepFn fn = g_sleep.load(std::memory_order_acquire);
  if (fn != nullptr) {
    fn(delay);
  } else {
    std::this_thread::sleep_for(delay);
  }
}

void Backoff::reset() {
  next_ = policy_.initial;
  attempts_ = 0;
}

void Backoff::set_sleep_for_testing(SleepFn fn) {
  g_sleep.store(fn, std::memory_order_release);
}

}  // namespace flexio::util
