// Human-readable description of a BP stream (the `bpls` utility's core).
#pragma once

#include <string>

#include "adios/bp_file.h"

namespace flexio::adios {

/// Summary statistics of one variable at one step, across writers.
struct VarSummary {
  VarMeta representative;      // one block's metadata (shape info)
  int blocks = 0;              // writer blocks at this step
  std::uint64_t elements = 0;  // total elements across blocks
  double min = 0, max = 0;     // over numeric payloads
};

/// Collect per-variable summaries for one step.
StatusOr<std::vector<VarSummary>> summarize_step(BpReader* reader,
                                                 StepId step);

/// Render the whole stream like ADIOS's bpls: steps, variables, shapes,
/// block counts, and (for numeric data) min/max.
StatusOr<std::string> describe(const std::string& dir,
                               const std::string& stream);

}  // namespace flexio::adios
