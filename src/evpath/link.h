// Unidirectional transport links underneath endpoints.
//
// Mirrors EVPath's modular transport architecture: the same Link interface
// is implemented by an in-process queue (reference/testing), the
// FastForward shared-memory channel (intra-node), and the NNTI RDMA
// protocol with receiver-directed Get and registered-buffer reuse
// (inter-node). The bus picks the implementation from the endpoints'
// Locations.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "evpath/message.h"
#include "nnti/nnti.h"
#include "nnti/registration_cache.h"
#include "shm/channel.h"
#include "util/status.h"

namespace flexio::evpath {

/// Per-link transfer counters (feeds FlexIO performance monitoring).
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t retries = 0;
};

/// Writer side of a unidirectional link.
class SendLink {
 public:
  virtual ~SendLink() = default;
  virtual Status send(ByteView msg, SendMode mode) = 0;

  /// Scatter-gather send: the message on the wire is the concatenation of
  /// `frags`. The base implementation coalesces into a flat buffer and
  /// falls back to send(); transports override it to gather the fragments
  /// natively, skipping that copy (counted in flexio.wire.copies_avoided).
  /// Fragments must stay valid until the call returns.
  virtual Status send_iov(std::span<const ByteView> frags, SendMode mode);

  virtual Status close() = 0;
  virtual TransportKind kind() const = 0;
  virtual LinkStats stats() const = 0;
};

/// Reader side of a unidirectional link.
class RecvLink {
 public:
  virtual ~RecvLink() = default;

  /// Poll for the next message. Returns:
  ///  * ok with *got=true           -- message (or EOS marker) produced
  ///  * ok with *got=false          -- nothing available right now
  virtual Status try_receive(Message* out, bool* got) = 0;
  virtual TransportKind kind() const = 0;
};

/// Tuning for link construction (subset of xml::MethodConfig).
struct LinkOptions {
  std::size_t queue_entries = 64;
  std::size_t queue_payload_bytes = 512;
  std::size_t pool_bytes = 64ull << 20;
  std::size_t rdma_pool_bytes = 256ull << 20;
  /// RDMA messages <= this ride the small-message queue; larger ones use
  /// receiver-directed Get.
  std::size_t rdma_eager_threshold = 4096;
  std::chrono::nanoseconds timeout = std::chrono::seconds(30);
  int max_retries = 3;
  bool use_xpmem = true;
};

/// Create a matched (send, recv) pair over an in-process queue.
std::pair<std::unique_ptr<SendLink>, std::unique_ptr<RecvLink>>
make_inproc_link(std::string peer_name, LinkOptions options);

/// Create a matched pair over a FastForward shared-memory channel.
std::pair<std::unique_ptr<SendLink>, std::unique_ptr<RecvLink>>
make_shm_link(std::string peer_name, LinkOptions options);

/// Create a matched pair over the NNTI fabric. `sender_nic` and
/// `receiver_nic` are dedicated per-link NICs (pairwise message queues,
/// like NNTI connections); the send side owns a registration cache.
std::pair<std::unique_ptr<SendLink>, std::unique_ptr<RecvLink>>
make_rdma_link(std::string peer_name, LinkOptions options,
               std::shared_ptr<nnti::Nic> sender_nic,
               std::shared_ptr<nnti::Nic> receiver_nic);

}  // namespace flexio::evpath
