// Shared-memory buffer pool with a size-classed free list.
//
// Large messages do not fit the fixed-size data-queue entries; the paper
// (Section II.D) has the producer pre-allocate a buffer pool indexed by a
// free list, pick "a buffer of the closest size" (allocating when none
// fits), and the consumer return the buffer after copying out. The same
// structure backs the RDMA transport's persistent-registration cache, so it
// also tracks a capacity threshold that triggers reclamation.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace flexio::shm {

/// Handle to a pooled buffer. Plain data so it can cross "address spaces"
/// inside a control message (the in-process analog of an XPMEM segment id /
/// RDMA remote address).
struct PoolBuffer {
  std::byte* data = nullptr;
  std::size_t capacity = 0;   // size-class capacity, >= requested size
  std::uint32_t size_class = 0;
  std::uint64_t id = 0;       // unique per acquisition, for debugging

  explicit operator bool() const { return data != nullptr; }
};

/// Monitoring counters.
struct PoolStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t reuses = 0;        // satisfied from the free list
  std::uint64_t allocations = 0;   // fresh memory allocated
  std::uint64_t reclamations = 0;  // buffers freed to honor the capacity cap
  std::size_t bytes_allocated = 0; // currently owned by the pool (free + busy)
  std::size_t bytes_in_use = 0;    // handed out, not yet released
};

/// Thread-safe (mutexed) pool. The producer acquires; the consumer releases
/// possibly from another thread, matching the paper's protocol where the
/// consumer "returns the buffer to the producer's free list".
class BufferPool {
 public:
  /// `capacity_bytes` is the reclamation threshold: when the total memory
  /// held by the pool exceeds it, released buffers are freed instead of
  /// cached (paper: "a configurable threshold value controls total memory
  /// usage and triggers buffer reclamation").
  explicit BufferPool(std::size_t capacity_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Acquire a buffer with capacity >= size. Fails with kResourceExhausted
  /// when honoring the request would exceed 2x the capacity threshold even
  /// after reclaiming everything free.
  StatusOr<PoolBuffer> acquire(std::size_t size);

  /// Return a buffer. Reuses it when under the threshold, frees otherwise.
  void release(PoolBuffer buffer);

  PoolStats stats() const;

  /// Smallest size class (bytes); exposed for tests.
  static constexpr std::size_t kMinClassBytes = 64;

  /// Size class index for a request: classes are powers of two starting at
  /// kMinClassBytes.
  static std::uint32_t class_for(std::size_t size);
  /// Capacity in bytes of a size class.
  static std::size_t class_capacity(std::uint32_t size_class);

 private:
  struct Shelf {
    std::vector<std::byte*> free_buffers;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_bytes_;
  std::vector<Shelf> shelves_;
  PoolStats stats_;
  std::uint64_t next_id_ = 1;
};

}  // namespace flexio::shm
