// Span tracing for the data path: RAII spans with parent/child nesting,
// bounded ring-buffer storage, and Chrome trace_event JSON export
// (chrome://tracing / Perfetto "Open trace file").
//
// Cost model matches util/metrics.h: a disabled span is one relaxed atomic
// load and a branch (the constructor latches the decision, so a span that
// started enabled always records). Enabled spans take a global mutex only
// at end(), once per span -- tracing is a diagnosis mode, not a hot-path
// default. The ring keeps the newest spans: when it wraps, the oldest
// records are overwritten (tests/trace_test.cpp pins this).
//
// Span names must be string literals (or otherwise outlive the process):
// records store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace flexio::trace {

/// Runtime gate, independent of metrics::enabled(). Initialized from the
/// FLEXIO_TRACE environment variable.
bool enabled();
void set_enabled(bool on);

/// One completed span. Times come from metrics::now_ns() (fake-clock aware).
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t id = 0;      // process-unique, monotonically assigned
  std::uint64_t parent = 0;  // id of the enclosing span on this thread, 0 = root
  std::uint32_t tid = 0;     // dense per-thread index, stable per thread
  std::uint32_t depth = 0;   // nesting depth (root = 0)
};

/// Resize the ring (drops existing records). Default capacity 4096.
void set_capacity(std::size_t capacity);

/// Completed spans, oldest first. Safe to call while spans are recorded.
std::vector<SpanRecord> snapshot();

/// Drop all recorded spans.
void reset();

/// Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
std::string chrome_json();

/// Write chrome_json() to a file (load via chrome://tracing).
Status write_chrome_json(const std::string& path);

class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) begin(name);
  }
  ~Span() {
    if (armed_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();

  bool armed_ = false;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace flexio::trace
