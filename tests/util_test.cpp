// Unit tests for flexio::util: status, strings, stats, rng, cacheline.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "util/backoff.h"
#include "util/cacheline.h"
#include "util/common.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"

namespace flexio {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = make_error(ErrorCode::kTimeout, "fetch exceeded 5s");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(s.to_string(), "timeout: fetch exceeded 5s");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kUnimplemented); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().is_ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(make_error(ErrorCode::kNotFound, "no such stream"));
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.is_ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(CommonTest, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 8), 16u);
  EXPECT_EQ(align_up(63, 64), 64u);
}

TEST(CommonTest, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(CachelineTest, PaddedSeparatesValues) {
  Padded<std::uint32_t> a[2];
  const auto* pa = reinterpret_cast<const char*>(&a[0]);
  const auto* pb = reinterpret_cast<const char*>(&a[1]);
  EXPECT_GE(static_cast<std::size_t>(pb - pa), kCacheLineSize);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\na b\r\n"), "a b");
}

TEST(StringsTest, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, ParseSizeSuffixes) {
  std::size_t v = 0;
  EXPECT_TRUE(parse_size("64", &v));
  EXPECT_EQ(v, 64u);
  EXPECT_TRUE(parse_size("4K", &v));
  EXPECT_EQ(v, 4096u);
  EXPECT_TRUE(parse_size("2m", &v));
  EXPECT_EQ(v, 2u << 20);
  EXPECT_TRUE(parse_size("1G", &v));
  EXPECT_EQ(v, 1u << 30);
  EXPECT_FALSE(parse_size("", &v));
  EXPECT_FALSE(parse_size("abc", &v));
  EXPECT_FALSE(parse_size("-4K", &v));
}

TEST(StringsTest, ParseIntRejectsGarbage) {
  long long v = 0;
  EXPECT_TRUE(parse_int(" 42 ", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("42x", &v));
  EXPECT_FALSE(parse_int("", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(parse_double("1.2.3", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(str_format("x=%d y=%s", 3, "ok"), "x=3 y=ok");
  EXPECT_EQ(str_format("%s", ""), "");
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(PercentilesTest, QuantilesOfKnownData) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_NEAR(p.quantile(0.5), 50.5, 1e-9);
  // Adding after a query must invalidate the sort cache.
  p.add(0.5);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, GaussianRoughlyStandard) {
  Rng rng(42);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(LogTest, LevelGateWorks) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(detail::log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(detail::log_enabled(LogLevel::kTrace));
  set_log_level(prev);
}

// ----------------------------------------------------------- backoff ----

// Recorder for the process-wide sleep hook (plain function pointer, so the
// capture buffer is file-static).
std::vector<std::chrono::nanoseconds>& recorded_sleeps() {
  static std::vector<std::chrono::nanoseconds> v;
  return v;
}
void record_sleep(std::chrono::nanoseconds d) { recorded_sleeps().push_back(d); }

TEST(BackoffTest, DelaysGrowGeometricallyAndCap) {
  util::BackoffPolicy policy;
  policy.initial = std::chrono::milliseconds(1);
  policy.max = std::chrono::milliseconds(8);
  policy.multiplier = 2.0;
  util::Backoff backoff(policy);
  using std::chrono::milliseconds;
  EXPECT_EQ(backoff.next_delay(), milliseconds(1));
  EXPECT_EQ(backoff.next_delay(), milliseconds(2));
  EXPECT_EQ(backoff.next_delay(), milliseconds(4));
  EXPECT_EQ(backoff.next_delay(), milliseconds(8));
  EXPECT_EQ(backoff.next_delay(), milliseconds(8));  // capped
  EXPECT_EQ(backoff.attempts(), 5);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_EQ(backoff.next_delay(), milliseconds(1));
}

TEST(BackoffTest, SleepHookCapturesExactSequenceWithoutWaiting) {
  // A retry loop under the fake-sleep hook runs instantly and leaves the
  // exact delay schedule behind -- this is how the StreamReader's file-mode
  // open retry is pinned without wall-clock waits.
  recorded_sleeps().clear();
  util::Backoff::set_sleep_for_testing(&record_sleep);
  util::BackoffPolicy policy;
  policy.initial = std::chrono::milliseconds(2);
  policy.max = std::chrono::milliseconds(16);
  util::Backoff backoff(policy);
  for (int attempt = 0; attempt < 5; ++attempt) backoff.sleep();
  util::Backoff::set_sleep_for_testing(nullptr);
  using std::chrono::milliseconds;
  const std::vector<std::chrono::nanoseconds> want = {
      milliseconds(2), milliseconds(4), milliseconds(8), milliseconds(16),
      milliseconds(16)};
  EXPECT_EQ(recorded_sleeps(), want);
  recorded_sleeps().clear();
}

}  // namespace
}  // namespace flexio
