// MxN re-distribution planning (paper Figure 3 and Section II.C.2).
//
// Given the writer-side distributions (which rank wrote which block of
// which array) and the reader-side requests (which rank wants which
// selection, or which whole process group), compute the exact set of
// (writer, reader, region) transfer pieces. Both sides run this planner on
// identical inputs after the handshake, so each process derives the mapping
// independently -- the writer knows what to send, the reader knows exactly
// what to expect. Determinism of the output order is therefore part of the
// contract.
#pragma once

#include <string>
#include <vector>

#include "core/wire.h"

namespace flexio {

struct TransferPiece {
  int writer_rank = 0;
  int reader_rank = 0;
  std::string var;
  adios::VarMeta meta;   // the writer block's metadata
  adios::Box region;     // global coords of the overlap (== block for PG)
  bool whole_block = false;  // process-group transfer of the full block

  /// Bytes this piece moves.
  std::uint64_t bytes() const {
    return region.elements() * serial::size_of(meta.type);
  }
};

/// Plan all pieces for one step. Ordering: writer rank, then reader rank,
/// then announce order of blocks, then request order of selections.
std::vector<TransferPiece> plan_transfers(
    const std::vector<wire::BlockInfo>& blocks, const wire::ReadRequest& req);

/// Pieces sent by one writer rank (stable sub-order of plan_transfers).
std::vector<TransferPiece> pieces_from_writer(
    const std::vector<TransferPiece>& plan, int writer_rank);

/// Pieces expected by one reader rank.
std::vector<TransferPiece> pieces_to_reader(
    const std::vector<TransferPiece>& plan, int reader_rank);

/// Inter-program communication volume matrix, matrix[w][r] = bytes moved
/// from writer rank w to reader rank r. Input to the data-aware and
/// holistic placement policies (paper Section III.B).
std::vector<std::vector<std::uint64_t>> comm_matrix(
    const std::vector<TransferPiece>& plan, int num_writers, int num_readers);

}  // namespace flexio
