// Intra-node message channel: control queue + buffer pool + XPMEM-style path.
//
// Implements the paper's full shared-memory transport protocol
// (Section II.D) for one producer -> consumer direction:
//  * small messages ride inline in FastForward data-queue entries;
//  * large asynchronous messages go through the shared buffer pool
//    (producer copy-in + consumer copy-out = the paper's "two memory
//    copies"), with the consumer returning the buffer to the producer's
//    free list;
//  * large synchronous messages can use the XPMEM-style path: the producer
//    publishes its source buffer as a segment and blocks until the consumer
//    copies directly out of it ("one memory copy"), mirroring
//    xpmem_make()/xpmem_attach().
//
// Threading contract: one producer thread at a time per channel (the SPSC
// queue and buffer-pool free list assume a single concurrent sender);
// Endpoint's per-link send mutex enforces it. Distinct channels share no
// state, so sends on different links proceed fully in parallel.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <vector>

#include "shm/buffer_pool.h"
#include "shm/spsc_queue.h"
#include "util/status.h"

namespace flexio::shm {

/// Transfer statistics for the monitoring layer.
struct ChannelStats {
  std::uint64_t inline_sends = 0;
  std::uint64_t pool_sends = 0;
  std::uint64_t xpmem_sends = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t memory_copies = 0;  // copies of message payloads, both sides
};

/// Tuning knobs, fed from the XML method config.
struct ChannelOptions {
  std::size_t queue_entries = 64;
  std::size_t queue_payload_bytes = 256;
  std::size_t pool_bytes = 64ull << 20;
  /// Messages <= this ride inline in a queue entry. Must be smaller than
  /// queue_payload_bytes minus the control header.
  std::size_t inline_threshold = 192;
  /// Use the XPMEM one-copy path for synchronous sends of large messages.
  bool use_xpmem = true;
  std::chrono::nanoseconds timeout = std::chrono::seconds(30);
};

class Channel {
 public:
  explicit Channel(ChannelOptions options);

  /// Asynchronous send: returns once the message is enqueued (inline) or
  /// copied into a pool buffer. The caller may reuse `msg` immediately.
  Status send(ByteView msg);

  /// Synchronous send: additionally guarantees the consumer has copied the
  /// data out before returning. Uses the XPMEM one-copy path when enabled.
  Status send_sync(ByteView msg);

  /// Scatter-gather variants: the message is the concatenation of `frags`.
  /// The producer gathers straight into the queue entry (inline) or pool
  /// buffer, skipping the flat coalescing copy a plain send would need.
  Status send_iov(std::span<const ByteView> frags);

  /// Synchronous scatter-gather send. With XPMEM enabled the producer
  /// publishes a fragment descriptor list and the consumer gathers directly
  /// out of the producer's buffers -- still exactly one payload copy.
  Status send_sync_iov(std::span<const ByteView> frags);

  /// Receive the next message. Returns kEndOfStream after close() has been
  /// received, kTimeout if nothing arrives in time.
  Status receive(std::vector<std::byte>* out);

  /// Like receive() but with an explicit deadline; a zero timeout polls once
  /// (used by upper layers multiplexing several inbound links).
  Status receive_for(std::vector<std::byte>* out,
                     std::chrono::nanoseconds timeout);

  /// Signal end-of-stream to the consumer (paper: analytics see EOS from
  /// their read calls when the simulation closes the file).
  Status close();

  /// Mark the consumer side as gone (its receive link was destroyed).
  /// Subsequent sends -- and a producer already blocked on ring space or
  /// an XPMEM ack -- fail fast with kUnavailable instead of burning the
  /// full timeout against a consumer that will never drain the queue.
  /// Safe because a destroyed consumer can no longer touch published
  /// buffers or ack flags.
  void abandon_receiver();
  bool receiver_gone() const {
    return receiver_gone_.load(std::memory_order_acquire);
  }

  ChannelStats stats() const;
  const ChannelOptions& options() const { return options_; }

 private:
  enum class Tag : std::uint8_t {
    kInline = 0,
    kPool = 1,
    kXpmem = 2,
    kEos = 3,
    kXpmemIov = 4,  // xpmem sync path with a fragment descriptor list
  };

  struct Control {  // fixed-size control message, fits any queue entry
    Tag tag;
    std::uint64_t size;
    std::uint64_t addr;        // pool buffer / xpmem segment address
    std::uint64_t pool_capacity;
    std::uint32_t pool_class;
    std::uint64_t pool_id;
    std::uint64_t ack_addr;    // producer-side completion flag (xpmem path)
  };

  Status send_control(const Control& ctl, ByteView inline_payload);
  Status send_control(const Control& ctl, std::span<const ByteView> frags);
  Status wait_ack(const std::atomic<std::uint32_t>& ack);
  static void encode_control(const Control& ctl,
                             std::span<const ByteView> frags,
                             std::vector<std::byte>* out);
  static Status decode_control(ByteView raw, Control* ctl,
                               ByteView* inline_payload);

  ChannelOptions options_;
  SpscQueue queue_;
  BufferPool pool_;

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> inline_sends_{0};
  std::atomic<std::uint64_t> pool_sends_{0};
  std::atomic<std::uint64_t> xpmem_sends_{0};
  std::atomic<std::uint64_t> copies_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> receiver_gone_{false};
  bool eos_received_ = false;  // consumer-side only
};

}  // namespace flexio::shm
