// Figure 9: S3D_Box Total Execution Time under different visualization
// placements, scaled over S3D cores, on Smoky (a) and Titan (b).
//
// Series: Inline, Hybrid (data-aware mapping), Staging under holistic and
// node-topology-aware placement, and the solo lower bound. Also prints the
// staging-vs-inline improvement (paper: up to 19% on Smoky and 30% on
// Titan, with <1% extra resources).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "bench/report.h"

namespace {

using namespace flexio;
using namespace flexio::apps;

void report_machine(bench::Report* report, const sim::MachineDesc& machine,
                    const std::vector<int>& scales) {
  for (S3dVariant v : kAllS3dVariants) {
    std::vector<double> totals;
    for (int cores : scales) {
      auto result = simulate_coupled(s3d_scenario(machine, cores, v));
      if (result.is_ok()) totals.push_back(result.value().total_seconds);
    }
    report->add_samples(machine.name + "/" + std::string(s3d_variant_name(v)),
                        "s", 0, static_cast<int>(totals.size()),
                        std::move(totals));
  }
}

void run_machine(const sim::MachineDesc& machine,
                 const std::vector<int>& scales) {
  std::printf("\nFigure 9 (%s): S3D_Box Total Execution Time (seconds)\n",
              machine.name.c_str());
  std::printf("%-10s", "S3D cores");
  for (S3dVariant v : kAllS3dVariants) {
    std::printf(" %30s", std::string(s3d_variant_name(v)).c_str());
  }
  std::printf(" %14s\n", "staging gain");
  for (int cores : scales) {
    std::printf("%-10d", cores);
    double inline_t = 0, staging_t = 0;
    for (S3dVariant v : kAllS3dVariants) {
      auto result = simulate_coupled(s3d_scenario(machine, cores, v));
      if (!result.is_ok()) {
        std::printf(" %30s", result.status().to_string().c_str());
        continue;
      }
      if (v == S3dVariant::kInline) inline_t = result.value().total_seconds;
      if (v == S3dVariant::kStagingTopoAware) {
        staging_t = result.value().total_seconds;
      }
      std::printf(" %30.2f", result.value().total_seconds);
    }
    if (inline_t > 0) {
      std::printf(" %13.1f%%", 100.0 * (inline_t - staging_t) / inline_t);
    }
    std::printf("\n");
  }

  // Resource cost of staging (paper: "0.78% additional resources").
  auto staging = simulate_coupled(
      s3d_scenario(machine, scales.back(), S3dVariant::kStagingTopoAware));
  if (staging.is_ok()) {
    std::printf("staging extra resources at %d cores: %d of %d nodes (%.2f%%)\n",
                scales.back(), staging.value().analytics_nodes,
                staging.value().nodes_used,
                100.0 * staging.value().analytics_nodes /
                    staging.value().sim_nodes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine_arg = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      machine_arg = argv[++i];
    }
  }
  flexio::bench::Report report("fig9_s3d_placement");
  if (machine_arg == "smoky" || machine_arg == "both") {
    run_machine(flexio::sim::smoky(), {128, 256, 512, 1024});
    report_machine(&report, flexio::sim::smoky(), {128, 256, 512, 1024});
  }
  if (machine_arg == "titan" || machine_arg == "both") {
    run_machine(flexio::sim::titan(), {256, 512, 1024, 2048, 4096});
    report_machine(&report, flexio::sim::titan(), {256, 512, 1024, 2048, 4096});
  }
  return report.write().is_ok() ? 0 : 1;
}
