// flexio_trace: dump and convert FlexIO span traces.
//
// The runtime exports Chrome trace_event JSON (trace::write_chrome_json,
// enabled with FLEXIO_TRACE=1). This tool works on those files:
//
//   flexio_trace dump  <trace.json>            readable table, children
//                                              indented under parents
//   flexio_trace convert <in.json> <out.json>  parse, validate, re-emit
//                                              normalized (sorted by ts)
//   flexio_trace demo  <out.json>              record a small nested demo
//                                              trace (for docs and smoke
//                                              tests; no input needed)
//   flexio_trace merge <a.json> <b.json> <out.json>
//                                              stitch two per-process
//                                              exports into one timeline
//                                              (clock-offset corrected,
//                                              reader steps parented under
//                                              writer steps)
//   flexio_trace pipeline <outdir>             run a 1x1 shm writer/reader
//                                              pipeline with the live
//                                              telemetry plane up (stats
//                                              server, heartbeat stats
//                                              aggregation, cooperative
//                                              watchdog canary), export
//                                              per-side traces + flight-
//                                              recorder stats + scraped
//                                              cluster view, and merge
//                                              (writer.json, reader.json,
//                                              merged.json, flight.jsonl,
//                                              cluster.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adios/array.h"
#include "adios/var.h"
#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/flight_recorder.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/stats_server.h"
#include "util/trace.h"
#include "util/trace_merge.h"
#include "util/watchdog.h"

namespace {

using namespace flexio;

struct Event {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
};

int fail(const std::string& msg) {
  std::fprintf(stderr, "flexio_trace: %s\n", msg.c_str());
  return 1;
}

StatusOr<std::vector<Event>> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = json::parse(buf.str());
  if (!doc.is_ok()) return doc.status();
  const json::Value* events = doc.value().find("traceEvents");
  if (!events || events->kind() != json::Value::Kind::kArray) {
    return make_error(ErrorCode::kInvalidArgument,
                      path + ": no traceEvents array");
  }
  std::vector<Event> out;
  for (const json::Value& ev : events->as_array()) {
    const json::Value* ph = ev.find("ph");
    if (!ph || ph->as_string() != "X") continue;  // only complete events
    Event e;
    if (const json::Value* v = ev.find("name")) e.name = v->as_string();
    if (const json::Value* v = ev.find("ts")) e.ts_us = v->as_number();
    if (const json::Value* v = ev.find("dur")) e.dur_us = v->as_number();
    if (const json::Value* v = ev.find("tid")) {
      e.tid = static_cast<std::uint32_t>(v->as_number());
    }
    if (const json::Value* args = ev.find("args")) {
      if (const json::Value* v = args->find("depth")) {
        e.depth = static_cast<std::uint32_t>(v->as_number());
      }
      if (const json::Value* v = args->find("id")) {
        e.id = static_cast<std::uint64_t>(v->as_number());
      }
      if (const json::Value* v = args->find("parent")) {
        e.parent = static_cast<std::uint64_t>(v->as_number());
      }
    }
    out.push_back(std::move(e));
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.ts_us < b.ts_us;
  });
  return out;
}

int dump(const std::string& path) {
  auto events = load(path);
  if (!events.is_ok()) return fail(events.status().to_string());
  std::printf("%-14s %-12s %5s %4s  %s\n", "ts (us)", "dur (us)", "tid",
              "dep", "span");
  for (const Event& e : events.value()) {
    std::printf("%-14.3f %-12.3f %5u %4u  %*s%s\n", e.ts_us, e.dur_us, e.tid,
                e.depth, static_cast<int>(e.depth * 2), "", e.name.c_str());
  }
  std::printf("%zu spans\n", events.value().size());
  return 0;
}

int convert(const std::string& in_path, const std::string& out_path) {
  auto events = load(in_path);
  if (!events.is_ok()) return fail(events.status().to_string());
  std::ofstream out(out_path);
  if (!out) return fail("cannot open " + out_path);
  out << "{\"traceEvents\": [\n";
  const auto& evs = events.value();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Event& e = evs[i];
    std::string name;
    for (char c : e.name) {
      if (c == '"' || c == '\\') name.push_back('\\');
      name.push_back(c);
    }
    char line[512];
    std::snprintf(line, sizeof line,
                  "{\"name\": \"%s\", \"cat\": \"flexio\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %u, "
                  "\"args\": {\"id\": %llu, \"parent\": %llu, \"depth\": "
                  "%u}}%s\n",
                  name.c_str(), e.ts_us, e.dur_us, e.tid,
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent), e.depth,
                  i + 1 < evs.size() ? "," : "");
    out << line;
  }
  out << "]}\n";
  std::printf("wrote %zu spans to %s\n", evs.size(), out_path.c_str());
  return 0;
}

int merge(const std::string& a_path, const std::string& b_path,
          const std::string& out_path) {
  auto merged = trace::merge_trace_files(a_path, b_path);
  if (!merged.is_ok()) return fail(merged.status().to_string());
  // Generous slack: the offset estimate is biased by up to one one-way
  // delay when samples exist in only one direction.
  const Status valid = merged.value().validate(1000.0);
  if (!valid.is_ok()) return fail(valid.to_string());
  const Status st = trace::write_merged(merged.value(), out_path);
  if (!st.is_ok()) return fail(st.to_string());
  std::printf("merged %zu events (clock offset %+.3f us from %zu+%zu "
              "samples) -> %s\n",
              merged.value().events.size(), merged.value().offset_us,
              merged.value().clock_pairs_a, merged.value().clock_pairs_b,
              out_path.c_str());
  return 0;
}

int pipeline(const std::string& outdir) {
  // A complete 1x1 coupled run over the shm transport, writer and reader
  // as virtual processes (pids 1 and 2), with the flight recorder sampling
  // in the background and the full live telemetry plane up: membership
  // heartbeats piggybacking stats deltas into the directory's cluster
  // view, a stats server scraped into cluster.json, and a cooperative
  // watchdog that must stay silent -- a happy-path run emitting health
  // events means a detector is trigger-happy, so any event fails the run.
  // Produces the telemetry artifact set CI uploads.
  trace::set_enabled(true);
  trace::reset();
  metrics::set_enabled(true);
  flight::Options fopt;
  fopt.path = outdir + "/flight.jsonl";
  fopt.interval_ms = 2;
  if (const Status st = flight::start(fopt); !st.is_ok()) {
    return fail(st.to_string());
  }

  constexpr int kSteps = 4;
  constexpr std::uint64_t kN = 2048;
  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 1);
  xml::MethodConfig method;
  method.method = "FLEXIO";
  method.timeout_ms = 20000;
  method.telemetry = true;  // piggyback stats deltas on heartbeats

  // Membership drives the heartbeat (and thus aggregation) path. The TTL
  // is generous: this is a short cooperative run and a TTL-expiry death
  // here would be a false positive by construction.
  evpath::MembershipOptions mopt;
  mopt.enabled = true;
  mopt.ttl = std::chrono::seconds(5);
  rt.directory().set_membership_options(mopt);

  telemetry::StatsServer& stats = telemetry::configure("127.0.0.1:0", true);
  stats.add_source("/cluster",
                   [&rt] { return rt.directory().cluster_json(); });

  telemetry::Watchdog watchdog;
  telemetry::WatchdogOptions wopt;
  wopt.interval_ns = 1'000'000;  // evaluate on every cooperative poll
  wopt.membership_probe = [&rt] { return rt.directory().dead_members(); };
  if (const Status st = watchdog.start(wopt); !st.is_ok()) {
    flight::stop();
    return fail(st.to_string());
  }
  stats.set_watchdog(&watchdog);

  std::thread reader_thread([&] {
    trace::set_thread_pid(2);
    StreamSpec spec;
    spec.stream = "trace_pipeline";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = method;
    auto r = rt.open_reader(spec);
    if (!r.is_ok()) return;
    std::vector<double> dst(kN);
    for (;;) {
      auto step = r.value()->begin_step();
      if (!step.is_ok()) break;
      (void)r.value()->schedule_read(
          "field", adios::Box{{0}, {kN}},
          MutableByteView(std::as_writable_bytes(std::span<double>(dst))));
      if (!r.value()->perform_reads().is_ok()) break;
      if (!r.value()->end_step().is_ok()) break;
    }
    (void)r.value()->close();
  });

  bool write_failed = false;
  {
    trace::set_thread_pid(1);
    StreamSpec spec;
    spec.stream = "trace_pipeline";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = method;
    auto w = rt.open_writer(spec);
    if (!w.is_ok()) {
      reader_thread.join();
      flight::stop();
      return fail(w.status().to_string());
    }
    std::vector<double> data(kN);
    const auto meta = adios::global_array_var(
        "field", serial::DataType::kDouble, {kN}, adios::Box{{0}, {kN}});
    for (int s = 0; s < kSteps && !write_failed; ++s) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = s + static_cast<double>(i) * 1e-3;
      }
      Status st = w.value()->begin_step(s);
      if (st.is_ok()) {
        st = w.value()->write(meta,
                              as_bytes_view(std::span<const double>(data)));
      }
      if (st.is_ok()) st = w.value()->end_step();
      if (!st.is_ok()) {
        std::fprintf(stderr, "flexio_trace: step %d: %s\n", s,
                     st.to_string().c_str());
        write_failed = true;
      }
      // Stretch the run past a few heartbeat intervals so the beats carry
      // real per-step deltas into the cluster view, and give the
      // cooperative watchdog its evaluation points.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      watchdog.poll();
    }
    (void)w.value()->close();
  }
  reader_thread.join();
  watchdog.poll();  // final evaluation with the run quiesced
  flight::stop();

  // Export the aggregated cluster view through a real scrape (the same
  // path flexio_top uses), then enforce the zero-health-events canary.
  std::string cluster;
  if (const Status st =
          telemetry::scrape(stats.address(), "/cluster", &cluster);
      !st.is_ok()) {
    stats.set_watchdog(nullptr);
    watchdog.stop();
    return fail("cluster scrape: " + st.to_string());
  }
  {
    std::ofstream out(outdir + "/cluster.json");
    out << cluster;
    if (!out) {
      stats.set_watchdog(nullptr);
      watchdog.stop();
      return fail("cannot write " + outdir + "/cluster.json");
    }
  }
  stats.set_watchdog(nullptr);
  watchdog.stop();
  const auto events = watchdog.events();
  if (!events.empty()) {
    for (const auto& ev : events) {
      std::fprintf(stderr, "flexio_trace: unexpected health event: %s\n",
                   ev.to_json().c_str());
    }
    return fail("happy-path pipeline emitted health events");
  }
  std::printf("cluster view scraped from %s -> %s/cluster.json\n",
              stats.address().c_str(), outdir.c_str());
  if (write_failed) return 1;

  const std::string a_path = outdir + "/writer.json";
  const std::string b_path = outdir + "/reader.json";
  Status st = trace::write_chrome_json_for(a_path, 1);
  if (!st.is_ok()) return fail(st.to_string());
  st = trace::write_chrome_json_for(b_path, 2);
  if (!st.is_ok()) return fail(st.to_string());
  std::printf("ran %d steps; wrote %s, %s, %s\n", kSteps, a_path.c_str(),
              b_path.c_str(), fopt.path.c_str());
  return merge(a_path, b_path, outdir + "/merged.json");
}

int demo(const std::string& out_path) {
  trace::set_enabled(true);
  {
    trace::Span step("demo.step");
    for (int i = 0; i < 3; ++i) {
      trace::Span handshake("demo.handshake");
      trace::Span exchange("demo.exchange");
    }
    trace::Span send("demo.send");
  }
  const Status st = trace::write_chrome_json(out_path);
  if (!st.is_ok()) return fail(st.to_string());
  std::printf("wrote demo trace to %s (open in chrome://tracing)\n",
              out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "dump" && argc == 3) return dump(argv[2]);
  if (cmd == "convert" && argc == 4) return convert(argv[2], argv[3]);
  if (cmd == "demo" && argc == 3) return demo(argv[2]);
  if (cmd == "merge" && argc == 5) return merge(argv[2], argv[3], argv[4]);
  if (cmd == "pipeline" && argc == 3) return pipeline(argv[2]);
  std::fprintf(stderr,
               "usage:\n"
               "  flexio_trace dump <trace.json>\n"
               "  flexio_trace convert <in.json> <out.json>\n"
               "  flexio_trace demo <out.json>\n"
               "  flexio_trace merge <a.json> <b.json> <out.json>\n"
               "  flexio_trace pipeline <outdir>\n");
  return 2;
}
