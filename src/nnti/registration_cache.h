// Persistent buffer + registration cache for RDMA transfers.
//
// Dynamic buffer allocation and memory registration dominate RDMA costs
// (paper Figure 4), especially for particle codes whose output size changes
// every timestep. Like MPI and Charm++, FlexIO keeps allocated *and
// registered* buffers in a pool and reuses them whenever possible; a
// configurable threshold bounds total memory and triggers reclamation
// (Section II.E).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "nnti/nnti.h"
#include "util/status.h"

namespace flexio::nnti {

/// A pooled, registered buffer. `region` is what remote peers Get from.
struct RegisteredBuffer {
  std::byte* data = nullptr;
  std::size_t capacity = 0;
  std::uint32_t size_class = 0;
  MemRegion region;

  explicit operator bool() const { return data != nullptr; }
};

struct RegistrationCacheStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t hits = 0;           // registration avoided
  std::uint64_t misses = 0;         // no pooled buffer of the right class
  std::uint64_t registrations = 0;  // fresh allocate+register
  std::uint64_t reclamations = 0;   // freed+deregistered over threshold
  std::size_t bytes_held = 0;       // free + in-use
};

class RegistrationCache {
 public:
  /// `nic` must outlive the cache. `capacity_bytes` is the reclamation
  /// threshold on total held memory.
  RegistrationCache(Nic* nic, std::size_t capacity_bytes);
  ~RegistrationCache();

  RegistrationCache(const RegistrationCache&) = delete;
  RegistrationCache& operator=(const RegistrationCache&) = delete;

  /// A registered buffer with capacity >= size, reused when possible.
  /// Within a size class the most recently released buffer is reused first
  /// (it is the most likely to be cache- and TLB-warm).
  StatusOr<RegisteredBuffer> acquire(std::size_t size);

  /// Return a buffer to the pool (kept registered) or reclaim it when the
  /// pool is over threshold (freed and deregistered).
  void release(RegisteredBuffer buffer);

  RegistrationCacheStats stats() const;

  static constexpr std::size_t kMinClassBytes = 256;
  static std::uint32_t class_for(std::size_t size);
  static std::size_t class_capacity(std::uint32_t size_class);

 private:
  /// A pooled free buffer plus its release stamp. Stamps order eviction:
  /// when the pool must shrink, the least recently used free buffer (the
  /// smallest stamp, across all size classes) is deregistered first.
  struct FreeEntry {
    RegisteredBuffer buf;
    std::uint64_t last_use = 0;
  };

  void reclaim_locked(RegisteredBuffer& buf);
  /// Evict LRU free buffers until freeing `needed` more bytes would fit
  /// under the threshold (or nothing free remains).
  void evict_lru_locked(std::size_t needed);

  Nic* nic_;
  std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::vector<std::vector<FreeEntry>> shelves_;
  RegistrationCacheStats stats_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace flexio::nnti
