// Ablation benchmarks for the placement stack (google-benchmark).
//
// Quantifies the design choices behind Section III: multilevel
// partitioning quality vs. a round-robin binding (reported as cut-ratio
// counters), the cost of the three policies, and mapping onto two-level vs.
// NUMA-aware trees.
#include <benchmark/benchmark.h>

#include "bench/gbench_main.h"
#include "placement/mapper.h"
#include "placement/partitioner.h"
#include "placement/policies.h"
#include "util/rng.h"

namespace {

using namespace flexio;
using namespace flexio::placement;

CommGraph clustered_graph(int n, int pockets, std::uint64_t seed) {
  Rng rng(seed);
  CommGraph g(n);
  const int pocket = std::max(2, n / pockets);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < std::min(n, i + pocket / 2 + 1); ++j) {
      g.add_edge(i, j, 10.0 + rng.next_double());
    }
    g.add_edge(i, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))), 0.5);
  }
  return g;
}

void BM_PartitionQuality(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int parts = 8;
  const CommGraph g = clustered_graph(n, parts, 11);
  double cut = 0, rr_cut = 0;
  for (auto _ : state) {
    auto result = partition(g, parts);
    if (!result.is_ok()) state.SkipWithError("partition failed");
    cut = g.cut_weight(result.value());
    benchmark::DoNotOptimize(result.value().data());
  }
  std::vector<int> rr(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rr[static_cast<std::size_t>(i)] = i % parts;
  rr_cut = g.cut_weight(rr);
  state.counters["cut_vs_roundrobin"] = cut / rr_cut;  // smaller is better
}
BENCHMARK(BM_PartitionQuality)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_PolicyEndToEnd(benchmark::State& state) {
  // Full placement decision for a GTS-like coupled job.
  const int writers = static_cast<int>(state.range(0));
  const int readers = writers / 3 + 1;
  PlacementRequest req;
  req.machine = sim::smoky();
  req.policy = static_cast<Policy>(state.range(1));
  req.sim_processes = writers;
  req.analytics_processes = readers;
  req.inter.assign(static_cast<std::size_t>(writers),
                   std::vector<std::uint64_t>(
                       static_cast<std::size_t>(readers), 0));
  for (int w = 0; w < writers; ++w) {
    req.inter[static_cast<std::size_t>(w)]
             [static_cast<std::size_t>(w % readers)] = 110ull << 20;
  }
  req.sim_intra = grid2d_traffic(writers, 1 << 20);
  req.analytics_intra = grid2d_traffic(readers, 1 << 18);
  double cost = 0;
  for (auto _ : state) {
    auto result = place(req);
    if (!result.is_ok()) state.SkipWithError("place failed");
    cost = result.value().cost;
    benchmark::DoNotOptimize(result.value().sim_core.data());
  }
  state.counters["mapping_cost"] = cost;
}
BENCHMARK(BM_PolicyEndToEnd)
    ->Args({48, static_cast<int>(Policy::kDataAware)})
    ->Args({48, static_cast<int>(Policy::kHolistic)})
    ->Args({48, static_cast<int>(Policy::kTopologyAware)})
    ->Args({192, static_cast<int>(Policy::kTopologyAware)})
    ->Unit(benchmark::kMillisecond);

void BM_TreeMapping(benchmark::State& state) {
  // Ablation: mapping the same NUMA-affine graph onto the two-level tree
  // vs. the topology-aware tree; the counter reports the cost evaluated on
  // the *detailed* tree either way (what the machine actually charges).
  const bool topo = state.range(0) != 0;
  const sim::MachineDesc m = sim::smoky();
  const int n = 32;  // two nodes' worth of processes
  Rng rng(5);
  CommGraph g(n);
  for (int i = 0; i + 1 < n; i += 2) g.add_edge(i, i + 1, 1000);  // hot pairs
  for (int i = 0; i < n; ++i) {
    g.add_edge(i, (i + 4) % n, 5 + rng.next_double());
  }
  const ArchTree coarse = ArchTree::two_level(m, 2);
  const ArchTree detailed = ArchTree::topology_aware(m, 2);
  double cost = 0;
  for (auto _ : state) {
    auto cores = map_graph(g, topo ? detailed : coarse);
    if (!cores.is_ok()) state.SkipWithError("map failed");
    cost = mapping_cost(g, detailed, cores.value());
    benchmark::DoNotOptimize(cores.value().data());
  }
  state.counters["detailed_tree_cost"] = cost;
}
BENCHMARK(BM_TreeMapping)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return flexio::bench::run_benchmarks_with_report(argc, argv,
                                                   "micro_placement");
}
