#include "sim/pipeline.h"

#include <algorithm>

namespace flexio::sim {

PipelineTrace simulate_pipeline(const PipelineSpec& spec) {
  FLEXIO_CHECK(spec.intervals >= 1);
  EventEngine engine;
  PipelineTrace trace;

  // State machines driven by three chained event streams:
  //  producer: produce interval k, then (sync: wait for its transfer) start
  //            interval k+1;
  //  channel:  one transfer at a time, FIFO;
  //  consumer: process intervals in order as their data arrives.
  int produced = 0;
  double channel_free = 0;
  double consumer_free = 0;
  double last_ready = 0;

  // The chain is sequential, so a simple loop with simulated clocks is
  // exact; the event engine schedules the consumer completions so the
  // trace is also observable as events (and future extensions -- multiple
  // channels, variable intervals -- slot in naturally).
  double producer_clock = 0;
  for (int k = 0; k < spec.intervals; ++k) {
    producer_clock += spec.producer_seconds;
    // Transfer k occupies the channel after both the data exists and the
    // channel is free.
    const double transfer_start = std::max(producer_clock, channel_free);
    const double transfer_end = transfer_start + spec.movement_seconds;
    channel_free = transfer_end;
    last_ready = transfer_end;
    if (!spec.async_movement) {
      // Synchronous: the producer blocks until its transfer completed.
      producer_clock = transfer_end;
    }
    ++produced;
    const double start = std::max(transfer_end, consumer_free);
    trace.consumer_idle += start - consumer_free;
    consumer_free = start + spec.consumer_seconds;
    trace.consumer_busy += spec.consumer_seconds;
    const double done = consumer_free;
    engine.schedule_at(done, [] {});  // observable completion event
  }
  engine.run();
  trace.producer_finish = producer_clock;
  trace.total_seconds =
      spec.consumer_seconds > 0 || spec.movement_seconds > 0
          ? std::max(producer_clock, consumer_free)
          : producer_clock;
  FLEXIO_CHECK(produced == spec.intervals);
  // First-interval idle is pipeline fill, not waiting: normalize so idle
  // counts only post-fill stalls.
  trace.consumer_idle -=
      std::min(trace.consumer_idle,
               spec.producer_seconds + spec.movement_seconds);
  return trace;
}

}  // namespace flexio::sim
