#include "evpath/bus.h"

#include <thread>

#include "util/backoff.h"
#include "util/log.h"

namespace flexio::evpath {

namespace {

// recv polling: spin-yield first (a message is usually one scheduler slice
// away in these in-process deployments), then back off into short sleeps so
// an idle reader stops burning a core during a long step. The cap keeps
// worst-case added latency well under any protocol timeout.
constexpr int kRecvSpinYields = 64;
constexpr util::BackoffPolicy kRecvBackoff{
    std::chrono::microseconds(2), std::chrono::microseconds(256), 2.0};

}  // namespace

Endpoint::Endpoint(MessageBus* bus, std::string name, Location location,
                   LinkOptions options)
    : bus_(bus),
      name_(std::move(name)),
      location_(location),
      options_(options),
      recv_backoff_(kRecvBackoff) {}

Endpoint::~Endpoint() { bus_->remove(name_); }

std::shared_ptr<Endpoint::LinkEntry> Endpoint::outbound(
    const std::string& to) const {
  std::shared_lock<std::shared_mutex> lock(map_mutex_);
  const auto it = send_links_.find(to);
  return it == send_links_.end() ? nullptr : it->second;
}

StatusOr<std::shared_ptr<Endpoint::LinkEntry>> Endpoint::outbound_or_connect(
    const std::string& to) {
  if (auto entry = outbound(to)) return entry;
  // One dial per peer at a time: the double-checked lookup under
  // connect_mutex_ makes concurrent first-sends to the same destination
  // share a single link instead of racing two into existence.
  std::lock_guard<std::mutex> connect_lock(connect_mutex_);
  if (auto entry = outbound(to)) return entry;
  auto created = bus_->connect(this, to);
  if (!created.is_ok()) return created.status();
  auto entry = std::make_shared<LinkEntry>();
  entry->link = std::move(created).value();
  {
    std::unique_lock<std::shared_mutex> lock(map_mutex_);
    send_links_.emplace(to, entry);
  }
  return entry;
}

Status Endpoint::send(const std::string& to, ByteView msg, SendMode mode) {
  auto entry = outbound_or_connect(to);
  if (!entry.is_ok()) return entry.status();
  std::lock_guard<std::mutex> link_lock(entry.value()->mutex);
  return entry.value()->link->send(msg, mode);
}

Status Endpoint::send_iov(const std::string& to,
                          std::span<const ByteView> frags, SendMode mode) {
  auto entry = outbound_or_connect(to);
  if (!entry.is_ok()) return entry.status();
  std::lock_guard<std::mutex> link_lock(entry.value()->mutex);
  return entry.value()->link->send_iov(frags, mode);
}

Status Endpoint::close_to(const std::string& to) {
  auto entry = outbound(to);
  if (entry == nullptr) {
    return make_error(ErrorCode::kNotFound, "no link to " + to);
  }
  std::lock_guard<std::mutex> link_lock(entry->mutex);
  return entry->link->close();
}

void Endpoint::drop_link(const std::string& to) {
  std::shared_ptr<LinkEntry> doomed;
  {
    std::unique_lock<std::shared_mutex> lock(map_mutex_);
    const auto it = send_links_.find(to);
    if (it == send_links_.end()) return;
    doomed = std::move(it->second);
    send_links_.erase(it);
  }
  // Deferred reclamation: if a send is in flight it still holds the entry
  // and finishes on the detached link; the link destructor (which may
  // release RDMA buffers) runs when the last holder lets go -- here, when
  // no send is mid-call.
}

Status Endpoint::recv(Message* out, std::chrono::nanoseconds timeout) {
  return recv_from("", out, timeout);
}

Status Endpoint::recv_from(const std::string& from, Message* out,
                           std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(recv_mutex_);
      const std::size_t n = recv_links_.size();
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (rr_cursor_ + step) % n;
        Inbound& in = recv_links_[i];
        if (!from.empty() && in.from != from) continue;
        bool got = false;
        FLEXIO_RETURN_IF_ERROR(in.link->try_receive(out, &got));
        if (!got) continue;
        rr_cursor_ = (i + 1) % n;
        if (out->eos) {
          // Drop the link after its EOS is observed.
          recv_links_.erase(recv_links_.begin() +
                            static_cast<std::ptrdiff_t>(i));
          if (rr_cursor_ >= recv_links_.size()) rr_cursor_ = 0;
        }
        {
          // A dequeue proves the senders are active again: restart the
          // idle ladder at the spin tier so a burst following a long idle
          // period is not paced by a stale max-backoff sleep (pinned by
          // tests/endpoint_concurrency_test.cpp).
          std::lock_guard<std::mutex> idle_lock(recv_idle_mutex_);
          recv_spins_ = 0;
          recv_backoff_.reset();
        }
        return Status::ok();
      }
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return make_error(ErrorCode::kTimeout,
                        "recv timed out at " + name_ +
                            (from.empty() ? "" : " waiting for " + from));
    }
    // The ladder state outlives this call (see bus.h): compute the step
    // under the idle lock, spin or sleep outside it.
    bool spin = false;
    std::chrono::nanoseconds delay{};
    {
      std::lock_guard<std::mutex> idle_lock(recv_idle_mutex_);
      if (recv_spins_ < kRecvSpinYields) {
        ++recv_spins_;
        spin = true;
      } else {
        delay = recv_backoff_.next_delay();
      }
    }
    if (spin) {
      std::this_thread::yield();
    } else {
      util::Backoff::sleep_for(delay);
    }
  }
}

StatusOr<TransportKind> Endpoint::transport_to(const std::string& to) const {
  const auto entry = outbound(to);
  if (entry == nullptr) {
    return make_error(ErrorCode::kNotFound, "no link to " + to);
  }
  // kind() is immutable after construction; no entry lock needed.
  return entry->link->kind();
}

LinkStats Endpoint::outbound_stats(const std::string& to) const {
  const auto entry = outbound(to);
  if (entry == nullptr) return LinkStats{};
  std::lock_guard<std::mutex> link_lock(entry->mutex);
  return entry->link->stats();
}

void Endpoint::attach_recv_link(const std::string& from,
                                std::unique_ptr<RecvLink> link) {
  std::lock_guard<std::mutex> lock(recv_mutex_);
  recv_links_.push_back(Inbound{from, std::move(link)});
}

StatusOr<std::shared_ptr<Endpoint>> MessageBus::create_endpoint(
    const std::string& name, Location location, LinkOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(name);
  if (it != endpoints_.end() && !it->second.expired()) {
    return make_error(ErrorCode::kAlreadyExists, "endpoint exists: " + name);
  }
  std::shared_ptr<Endpoint> ep(new Endpoint(this, name, location, options));
  endpoints_[name] = ep;
  return ep;
}

StatusOr<std::unique_ptr<SendLink>> MessageBus::connect(Endpoint* from,
                                                        const std::string& to) {
  std::shared_ptr<Endpoint> target;
  std::uint64_t link_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(to);
    if (it != endpoints_.end()) target = it->second.lock();
    if (!target) {
      return make_error(ErrorCode::kNotFound, "no such endpoint: " + to);
    }
    link_id = next_link_id_++;
  }

  std::pair<std::unique_ptr<SendLink>, std::unique_ptr<RecvLink>> pair;
  if (from->location() == target->location()) {
    pair = make_inproc_link(from->name(), from->options_);
  } else if (from->location().node == target->location().node) {
    pair = make_shm_link(from->name(), from->options_);
  } else {
    // Name the per-link NICs after the endpoint pair so fabric-level
    // diagnostics and fault rules can address links deterministically; the
    // "#id" suffix keeps names unique across link generations (fault
    // matching strips it -- see tests/harness/fault_plan.h).
    const std::string base =
        from->name() + ">" + to + "#" + std::to_string(link_id);
    auto tx = fabric_.create_nic(base + ":tx");
    if (!tx.is_ok()) return tx.status();
    auto rx = fabric_.create_nic(base + ":rx");
    if (!rx.is_ok()) return rx.status();
    FLEXIO_RETURN_IF_ERROR(
        fabric_.connect(tx.value()->name(), rx.value()->name()));
    pair = make_rdma_link(from->name(), from->options_, tx.value(),
                          rx.value());
  }
  FLEXIO_LOG(kDebug) << from->name() << " -> " << to << " via "
                     << transport_kind_name(pair.first->kind());
  target->attach_recv_link(from->name(), std::move(pair.second));
  return std::move(pair.first);
}

std::shared_ptr<Endpoint> MessageBus::lookup(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second.lock();
}

void MessageBus::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  endpoints_.erase(name);
}

}  // namespace flexio::evpath
