#include "core/program.h"

namespace flexio {

Program::Program(std::string name, int size)
    : name_(std::move(name)), size_(size) {
  FLEXIO_CHECK(size >= 1);
}

// Each collective follows the same round structure:
//  entry    -- wait until no previous round is draining, then contribute;
//  complete -- wait for all ranks to arrive;
//  drain    -- last rank out resets the slot for the next round.
// A collective timeout poisons the program (some rank is stuck); callers
// treat it as fatal, mirroring an MPI collective hang.

Status Program::gather(int rank, ByteView contribution,
                       std::vector<std::vector<std::byte>>* all,
                       std::chrono::nanoseconds timeout) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  Slot& s = gather_slot_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mutex);
  if (!s.cv.wait_until(lock, deadline, [&] { return s.arrived < size_; })) {
    return make_error(ErrorCode::kTimeout, "gather entry stalled");
  }
  if (s.contributions.empty()) s.contributions.resize(size_);
  s.contributions[static_cast<std::size_t>(rank)] =
      std::vector<std::byte>(contribution.begin(), contribution.end());
  ++s.arrived;
  s.cv.notify_all();
  if (!s.cv.wait_until(lock, deadline, [&] { return s.arrived == size_; })) {
    return make_error(ErrorCode::kTimeout, "gather stalled waiting for ranks");
  }
  if (rank == kCoordinator && all != nullptr) {
    *all = s.contributions;
  }
  if (++s.departed == size_) {
    s.arrived = 0;
    s.departed = 0;
    s.contributions.clear();
    ++s.generation;
    s.cv.notify_all();
  }
  return Status::ok();
}

Status Program::broadcast(int rank, std::vector<std::byte>* data,
                          std::chrono::nanoseconds timeout) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  FLEXIO_CHECK(data != nullptr);
  Slot& s = bcast_slot_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mutex);
  if (!s.cv.wait_until(lock, deadline, [&] { return s.arrived < size_; })) {
    return make_error(ErrorCode::kTimeout, "broadcast entry stalled");
  }
  if (rank == kCoordinator) s.bcast_data = *data;
  ++s.arrived;
  s.cv.notify_all();
  if (!s.cv.wait_until(lock, deadline, [&] { return s.arrived == size_; })) {
    return make_error(ErrorCode::kTimeout, "broadcast stalled");
  }
  if (rank != kCoordinator) *data = s.bcast_data;
  if (++s.departed == size_) {
    s.arrived = 0;
    s.departed = 0;
    s.bcast_data.clear();
    ++s.generation;
    s.cv.notify_all();
  }
  return Status::ok();
}

Status Program::barrier(int rank, std::chrono::nanoseconds timeout) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  Slot& s = barrier_slot_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mutex);
  if (!s.cv.wait_until(lock, deadline, [&] { return s.arrived < size_; })) {
    return make_error(ErrorCode::kTimeout, "barrier entry stalled");
  }
  ++s.arrived;
  s.cv.notify_all();
  if (!s.cv.wait_until(lock, deadline, [&] { return s.arrived == size_; })) {
    return make_error(ErrorCode::kTimeout, "barrier stalled");
  }
  if (++s.departed == size_) {
    s.arrived = 0;
    s.departed = 0;
    ++s.generation;
    s.cv.notify_all();
  }
  return Status::ok();
}

}  // namespace flexio
