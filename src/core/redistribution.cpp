#include "core/redistribution.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/trace.h"

namespace flexio {

namespace {
metrics::Counter& plans_counter() {
  static metrics::Counter& c = metrics::counter("flexio.redistribution.plans");
  return c;
}
metrics::Counter& pieces_counter() {
  static metrics::Counter& c = metrics::counter("flexio.redistribution.pieces");
  return c;
}
}  // namespace

std::vector<TransferPiece> plan_transfers(
    const std::vector<wire::BlockInfo>& blocks, const wire::ReadRequest& req) {
  trace::Span span("redistribution.plan");
  std::vector<TransferPiece> plan;
  // Global-array selections: every (block, selection) overlap is a piece.
  for (const wire::BlockInfo& b : blocks) {
    if (b.meta.shape == adios::ShapeKind::kGlobalArray) {
      for (const wire::SelectionInfo& s : req.selections) {
        if (s.var != b.meta.name) continue;
        adios::Box overlap;
        if (!intersect(b.meta.block, s.box, &overlap)) continue;
        TransferPiece p;
        p.writer_rank = b.writer_rank;
        p.reader_rank = s.reader_rank;
        p.var = b.meta.name;
        p.meta = b.meta;
        p.region = overlap;
        plan.push_back(std::move(p));
      }
    } else if (b.meta.shape == adios::ShapeKind::kLocalArray) {
      // Process-group pattern: the whole block goes to every reader that
      // asked for this writer rank.
      for (const wire::PgRequestInfo& pg : req.pg_requests) {
        if (pg.writer_rank != b.writer_rank) continue;
        TransferPiece p;
        p.writer_rank = b.writer_rank;
        p.reader_rank = pg.reader_rank;
        p.var = b.meta.name;
        p.meta = b.meta;
        p.region = b.meta.block;
        p.whole_block = true;
        plan.push_back(std::move(p));
      }
    }
    // Scalars ride the StepAnnounce metadata; they never generate pieces.
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const TransferPiece& a, const TransferPiece& b) {
                     if (a.writer_rank != b.writer_rank) {
                       return a.writer_rank < b.writer_rank;
                     }
                     return a.reader_rank < b.reader_rank;
                   });
  if (metrics::enabled()) {
    plans_counter().inc();
    pieces_counter().add(plan.size());
  }
  return plan;
}

std::vector<TransferPiece> pieces_from_writer(
    const std::vector<TransferPiece>& plan, int writer_rank) {
  std::vector<TransferPiece> out;
  for (const TransferPiece& p : plan) {
    if (p.writer_rank == writer_rank) out.push_back(p);
  }
  return out;
}

std::vector<TransferPiece> pieces_to_reader(
    const std::vector<TransferPiece>& plan, int reader_rank) {
  std::vector<TransferPiece> out;
  for (const TransferPiece& p : plan) {
    if (p.reader_rank == reader_rank) out.push_back(p);
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> comm_matrix(
    const std::vector<TransferPiece>& plan, int num_writers,
    int num_readers) {
  std::vector<std::vector<std::uint64_t>> m(
      static_cast<std::size_t>(num_writers),
      std::vector<std::uint64_t>(static_cast<std::size_t>(num_readers), 0));
  for (const TransferPiece& p : plan) {
    FLEXIO_CHECK(p.writer_rank < num_writers && p.reader_rank < num_readers);
    m[static_cast<std::size_t>(p.writer_rank)]
     [static_cast<std::size_t>(p.reader_rank)] += p.bytes();
  }
  return m;
}

}  // namespace flexio
