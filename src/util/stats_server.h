// StatsServer: live scrape endpoint for the telemetry plane.
//
// A tiny HTTP/1.0-style responder on a local TCP socket. Off by default;
// a process opts in via the FLEXIO_STATS_ADDR environment variable or the
// xml <stats_addr> knob (telemetry::configure wires both). When off,
// nothing listens and the only residual cost in the data path is the
// publish_enabled() load+branch on the heartbeat path.
//
// Routes:
//   /metrics   metrics::expose_text() -- Prometheus text exposition
//   /health    the attached Watchdog's "flexio-health-v1" events, one JSON
//              line per event (empty body when no watchdog or no events)
//   /flight    the flight recorder's in-memory tail, one JSON line each
//   <custom>   anything registered with add_source(path, fn) -- the core
//              runtime mounts "/cluster" (the DirectoryServer's aggregated
//              flexio-cluster-v1 view) this way, keeping util/ free of an
//              evpath dependency.
//
// The responder serves one request per connection (GET <path>, headers
// ignored, connection closed after the body) -- enough for curl, for
// tools/flexio_top, and for any Prometheus-compatible scraper. scrape()
// is the matching in-process client.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace flexio::telemetry {

class Watchdog;

class StatsServer {
 public:
  StatsServer() = default;
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Bind `addr` ("host:port"; port 0 picks an ephemeral port) and start
  /// the responder thread. Fails if already running or the bind fails.
  Status start(const std::string& addr);

  /// Close the socket and join the responder thread. No-op when stopped.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Actual bound "host:port" (resolves an ephemeral port request).
  std::string address() const;

  /// Mount `fn` at `path` (must start with '/'). Replaces any previous
  /// source at the same path; built-in routes win over custom sources.
  void add_source(const std::string& path, std::function<std::string()> fn);

  /// Attach the watchdog whose events /health serves (nullptr detaches).
  void set_watchdog(Watchdog* watchdog);

 private:
  void serve();
  std::string respond(const std::string& path);

  mutable std::mutex mutex_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::string address_;
  std::thread thread_;
  Watchdog* watchdog_ = nullptr;
  std::map<std::string, std::function<std::string()>> sources_;
};

/// One-shot scrape client: GET `path` from a StatsServer at `addr` and
/// return the response body. Used by tools/flexio_top, the pipeline
/// cluster-snapshot export, and tests.
Status scrape(const std::string& addr, const std::string& path,
              std::string* body);

/// True when ranks should piggyback flexio-stats-v1 deltas on their
/// directory heartbeats. One relaxed load: cheap enough for the heartbeat
/// thread to check every beat.
bool publish_enabled();
void set_publish_enabled(bool on);

/// Process-wide opt-in, called from runtime wiring with the xml knobs.
/// Enables delta publishing when `publish` is set, and starts the global
/// stats server when either `stats_addr` or $FLEXIO_STATS_ADDR names an
/// address (the environment wins; serving implies publishing). Idempotent:
/// the first call that starts the server wins, later calls only OR in the
/// publish flag. Returns the server (started or not) for route mounting.
StatsServer& configure(const std::string& stats_addr, bool publish);

/// The processwide server instance (never null; may not be running).
StatsServer& global_server();

}  // namespace flexio::telemetry
