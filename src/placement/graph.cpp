#include "placement/graph.h"

#include <cmath>

namespace flexio::placement {

CommGraph::CommGraph(int num_vertices)
    : adjacency_(static_cast<std::size_t>(num_vertices)) {
  FLEXIO_CHECK(num_vertices >= 0);
}

void CommGraph::add_edge(int u, int v, double weight) {
  FLEXIO_CHECK(u >= 0 && u < size() && v >= 0 && v < size());
  if (u == v || weight <= 0) return;
  adjacency_[static_cast<std::size_t>(u)][v] += weight;
  adjacency_[static_cast<std::size_t>(v)][u] += weight;
}

double CommGraph::edge_weight(int u, int v) const {
  const auto& adj = adjacency_[static_cast<std::size_t>(u)];
  const auto it = adj.find(v);
  return it == adj.end() ? 0.0 : it->second;
}

double CommGraph::total_weight() const {
  double total = 0;
  for (int u = 0; u < size(); ++u) {
    for (const auto& [v, w] : neighbors(u)) {
      if (v > u) total += w;
    }
  }
  return total;
}

double CommGraph::cut_weight(const std::vector<int>& part) const {
  FLEXIO_CHECK(part.size() == adjacency_.size());
  double cut = 0;
  for (int u = 0; u < size(); ++u) {
    for (const auto& [v, w] : neighbors(u)) {
      if (v > u && part[static_cast<std::size_t>(u)] !=
                       part[static_cast<std::size_t>(v)]) {
        cut += w;
      }
    }
  }
  return cut;
}

CommGraph build_coupled_graph(
    const std::vector<std::vector<std::uint64_t>>& inter,
    const std::vector<std::vector<double>>& sim_intra,
    const std::vector<std::vector<double>>& analytics_intra) {
  const int writers = static_cast<int>(inter.size());
  const int readers = writers > 0 ? static_cast<int>(inter[0].size()) : 0;
  CommGraph graph(writers + readers);
  for (int w = 0; w < writers; ++w) {
    for (int r = 0; r < readers; ++r) {
      graph.add_edge(w, writers + r,
                     static_cast<double>(inter[static_cast<std::size_t>(w)]
                                              [static_cast<std::size_t>(r)]));
    }
  }
  for (std::size_t u = 0; u < sim_intra.size(); ++u) {
    for (std::size_t v = u + 1; v < sim_intra[u].size(); ++v) {
      graph.add_edge(static_cast<int>(u), static_cast<int>(v),
                     sim_intra[u][v]);
    }
  }
  for (std::size_t u = 0; u < analytics_intra.size(); ++u) {
    for (std::size_t v = u + 1; v < analytics_intra[u].size(); ++v) {
      graph.add_edge(writers + static_cast<int>(u),
                     writers + static_cast<int>(v), analytics_intra[u][v]);
    }
  }
  return graph;
}

namespace {

/// Most-square factorization of n into (rows, cols).
std::pair<int, int> square_factor(int n) {
  int rows = static_cast<int>(std::sqrt(static_cast<double>(n)));
  while (rows > 1 && n % rows != 0) --rows;
  return {rows, n / rows};
}

}  // namespace

std::vector<std::vector<double>> grid2d_traffic(int ranks,
                                                double bytes_per_neighbor) {
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(ranks),
      std::vector<double>(static_cast<std::size_t>(ranks), 0.0));
  const auto [rows, cols] = square_factor(ranks);
  auto id = [cols = cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r + 1 < rows) {
        m[static_cast<std::size_t>(id(r, c))]
         [static_cast<std::size_t>(id(r + 1, c))] = bytes_per_neighbor;
        m[static_cast<std::size_t>(id(r + 1, c))]
         [static_cast<std::size_t>(id(r, c))] = bytes_per_neighbor;
      }
      if (c + 1 < cols) {
        m[static_cast<std::size_t>(id(r, c))]
         [static_cast<std::size_t>(id(r, c + 1))] = bytes_per_neighbor;
        m[static_cast<std::size_t>(id(r, c + 1))]
         [static_cast<std::size_t>(id(r, c))] = bytes_per_neighbor;
      }
    }
  }
  return m;
}

std::vector<std::vector<double>> grid3d_traffic(int ranks,
                                                double bytes_per_neighbor) {
  // Factor into the most-cubic (x, y, z).
  int x = static_cast<int>(std::cbrt(static_cast<double>(ranks)));
  while (x > 1 && ranks % x != 0) --x;
  const auto [y, z] = square_factor(ranks / x);
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(ranks),
      std::vector<double>(static_cast<std::size_t>(ranks), 0.0));
  auto id = [y = y, z = z](int i, int j, int k) { return (i * y + j) * z + k; };
  auto link = [&m, bytes_per_neighbor](int a, int b) {
    m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
        bytes_per_neighbor;
    m[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] =
        bytes_per_neighbor;
  };
  for (int i = 0; i < x; ++i) {
    for (int j = 0; j < y; ++j) {
      for (int k = 0; k < z; ++k) {
        if (i + 1 < x) link(id(i, j, k), id(i + 1, j, k));
        if (j + 1 < y) link(id(i, j, k), id(i, j + 1, k));
        if (k + 1 < z) link(id(i, j, k), id(i, j, k + 1));
      }
    }
  }
  return m;
}

}  // namespace flexio::placement
