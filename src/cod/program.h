// Bytecode program, execution environment, and VM for CoD-mini.
//
// Plug-in source is compiled once (where it lands, after travelling as a
// string) into a small stack-machine program; executions then bind a fresh
// Environment holding the data being conditioned (globals like n/rows/cols,
// read-only arrays like input, and host builtins like emit/keep_row). The
// VM enforces an instruction budget and stack limits -- mobile code from
// the analytics side must not be able to wedge the simulation.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cod/ast.h"
#include "util/status.h"

namespace flexio::cod {

enum class Op : std::uint8_t {
  kConst,       // push imm
  kLoadLocal,   // push locals[a]
  kStoreLocal,  // locals[a] = pop
  kLoadGlobal,  // push env.global(a)
  kIndexArray,  // idx = pop; push env.array(a)[idx]
  kAdd, kSub, kMul, kDiv, kMod,
  kNeg, kNot,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kJmp,          // pc = a
  kJmpIfFalse,   // if pop()==0 pc = a
  kCallFn,       // call function a (its arity is popped off the stack)
  kBuiltin,      // call builtin a with b args
  kRet,          // return pop()
  kRetVoid,      // return 0.0
  kPop,
};

struct Instr {
  Op op = Op::kPop;
  int a = 0;
  int b = 0;
  double imm = 0;
};

/// Host-side function callable from plug-in code.
using Builtin = std::function<StatusOr<double>(std::span<const double> args)>;

/// Names+values visible to a plug-in. The same construction order must be
/// used at compile time and at every execution (indices are baked into the
/// bytecode); run() cross-checks names to catch mismatches.
class Environment {
 public:
  /// Read-only scalar (e.g. n, rows, cols).
  void add_global(const std::string& name, double value);
  /// Read-only indexable array (e.g. input).
  void add_array(const std::string& name, std::span<const double> values);
  /// Host function; arity -1 accepts any argument count.
  void add_builtin(const std::string& name, int arity, Builtin fn);

  int global_index(std::string_view name) const;
  int array_index(std::string_view name) const;
  int builtin_index(std::string_view name) const;

  double global(int idx) const { return globals_[static_cast<std::size_t>(idx)].second; }
  std::span<const double> array(int idx) const {
    return arrays_[static_cast<std::size_t>(idx)].second;
  }
  const std::string& global_name(int idx) const {
    return globals_[static_cast<std::size_t>(idx)].first;
  }
  const std::string& array_name(int idx) const {
    return arrays_[static_cast<std::size_t>(idx)].first;
  }
  const std::string& builtin_name(int idx) const {
    return std::get<0>(builtins_[static_cast<std::size_t>(idx)]);
  }
  int builtin_arity(int idx) const {
    return std::get<1>(builtins_[static_cast<std::size_t>(idx)]);
  }
  StatusOr<double> call_builtin(int idx, std::span<const double> args) const {
    return std::get<2>(builtins_[static_cast<std::size_t>(idx)])(args);
  }

 private:
  std::vector<std::pair<std::string, double>> globals_;
  std::vector<std::pair<std::string, std::span<const double>>> arrays_;
  std::vector<std::tuple<std::string, int, Builtin>> builtins_;
};

struct CompiledFunction {
  std::string name;
  int num_params = 0;
  int num_locals = 0;  // includes params
  std::vector<Instr> code;
};

struct CompiledProgram {
  std::vector<CompiledFunction> functions;
  // Names referenced from the environment, for run-time cross-checking.
  std::vector<std::string> global_names;
  std::vector<std::string> array_names;
  std::vector<std::string> builtin_names;

  int function_index(std::string_view name) const;
};

/// Compile a parsed program against the *shape* of an environment (its
/// names and arities; values are ignored at compile time).
StatusOr<CompiledProgram> compile(const ProgramAst& ast,
                                  const Environment& env);

/// Execution limits for mobile code.
struct VmLimits {
  std::uint64_t max_instructions = 100'000'000;
  std::size_t max_stack = 4096;
  std::size_t max_call_depth = 128;
};

/// Run `function` with `args`, binding `env` for globals/arrays/builtins.
/// Returns the function's value (0.0 for void functions).
StatusOr<double> run(const CompiledProgram& program, std::string_view function,
                     std::span<const double> args, const Environment& env,
                     const VmLimits& limits = {});

/// Human-readable bytecode listing (debugging aid for plug-in authors).
std::string disassemble(const CompiledProgram& program);

}  // namespace flexio::cod
