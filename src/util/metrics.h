// Low-overhead global metrics registry: counters, gauges, and log-bucketed
// histograms, shared by every layer of the data path.
//
// Design targets (docs/OBSERVABILITY.md):
//  * Disabled cost is one relaxed atomic load + a predictable branch per
//    call site. Nothing else runs; call sites hold a `static Metric&` so
//    the name lookup happens once per process.
//  * Enabled cost is one relaxed fetch_add on a cacheline-padded per-thread
//    shard, so concurrent writers never bounce a line between cores.
//  * Snapshots are torn-free: every shard is an atomic, so a reader thread
//    sums a monotone set of values while writers keep running (TSan-clean;
//    pinned by tests/metrics_test.cpp).
//  * A process-wide fake clock hook makes every timing metric (and trace
//    span) deterministic under test.
//
// Unlike core/monitor.h's PerfMonitor -- which is per-stream state that
// feeds the wire::MonitorReport shipped to the analytics side -- this
// registry is process-global and feeds offline tooling: bench/report.h
// counter deltas, tools/flexio_trace dumps, and test invariants.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/cacheline.h"
#include "util/status.h"

namespace flexio::metrics {

namespace detail {
/// Storage for the runtime gate; use enabled()/set_enabled().
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime gate. Initialized from the FLEXIO_METRICS environment variable
/// ("1"/"true"/"on"); tests and benches flip it with set_enabled().
/// Inline so a disabled call site compiles to one relaxed load + branch --
/// an out-of-line call would triple the disabled cost.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Nanosecond clock used by every timing metric and trace span.
/// set_clock_for_testing(nullptr) restores the real steady clock.
using ClockFn = std::uint64_t (*)();
std::uint64_t now_ns();
void set_clock_for_testing(ClockFn fn);

namespace detail {
/// Stable per-thread shard index in [0, kShards).
inline constexpr int kShards = 16;
int this_thread_shard();
}  // namespace detail

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n) {
    if (!enabled()) return;
    shards_[detail::this_thread_shard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Sum over all shards (readable from any thread while writers run).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[detail::kShards];
};

/// Signed up/down gauge (occupancy, bytes in flight). The value is the sum
/// of per-shard deltas, so add/sub may happen on different threads.
class Gauge {
 public:
  void add(std::int64_t delta) {
    if (!enabled()) return;
    shards_[detail::this_thread_shard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) { add(-delta); }

  std::int64_t value() const {
    std::int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::int64_t> v{0};
  };
  Shard shards_[detail::kShards];
};

/// Summary of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  /// Cumulative bucket counts in bucket order (see Histogram bucket math).
  std::vector<std::uint64_t> buckets;

  /// Nearest-rank quantile, reported as the lower bound of the bucket that
  /// holds the rank-ceil(q*count) sample. Relative error is bounded by the
  /// sub-bucket width (25% worst case); values that are exact bucket lower
  /// bounds are reported exactly (tests/metrics_test.cpp oracle).
  double quantile(double q) const;
  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

/// Log2-bucketed histogram of non-negative integer samples (latencies in
/// ns, sizes in bytes). 4 linear sub-buckets per octave.
class Histogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kBuckets = 256;

  void record(std::uint64_t v) {
    if (!enabled()) return;
    Shard& s = shards_[detail::this_thread_shard()];
    s.buckets[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    update_min(s.min, v);
    update_max(s.max, v);
  }

  HistogramSnapshot snapshot() const;
  void reset();

  /// Bucket index for a sample value.
  static int bucket_for(std::uint64_t v);
  /// Smallest sample value that maps to bucket `b`.
  static std::uint64_t bucket_lower(int b);

 private:
  friend class Registry;
  Histogram() = default;

  static void update_min(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v < cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_max(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v > cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };
  Shard shards_[detail::kShards];
};

/// RAII timer recording elapsed ns into a histogram. Latches the enable
/// decision at construction so a mid-scope flip cannot tear a sample.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* hist)
      : hist_(hist), armed_(enabled()), start_(armed_ ? now_ns() : 0) {}
  ~ScopedTimerNs() {
    if (armed_) hist_->record(now_ns() - start_);
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* hist_;
  bool armed_;
  std::uint64_t start_;
};

/// Look up (creating on first use) a metric by name. References stay valid
/// for the life of the process. Naming scheme: <layer>.<object>.<what>,
/// e.g. "nnti.get.bytes", "shm.queue.occupancy", "evpath.send.ns" --
/// see docs/OBSERVABILITY.md for the full catalogue.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

namespace detail {
/// Drop a metric from the registry maps without destroying it (references
/// handed out earlier stay valid; the object is leaked). Future snapshots
/// and scrapes no longer include the name; a later lookup under the same
/// name creates a fresh metric. Used by Family::retire when a labeled
/// series (a closed stream's gauges) ends its life. Returns false when the
/// name is not registered.
bool unregister_metric(const std::string& name);
}  // namespace detail

/// Bounded-cardinality label family: with(label) resolves to the registry
/// metric `<base>.<label>` for the first `max_labels` distinct labels and
/// to the shared `<base>.other` rollover bucket for every label beyond
/// that, so an unbounded label set (per-stream counters with thousands of
/// streams) cannot bloat the registry or its snapshots. First-come,
/// first-named: which labels get their own series depends on registration
/// order, which is what a per-process family wants (the first N streams a
/// process hosts are the ones worth telling apart; the long tail
/// aggregates). Thread-safe; callers should cache the returned reference,
/// exactly like the static-ref idiom used with counter()/gauge().
template <typename Metric>
class Family {
 public:
  Family(std::string base, std::size_t max_labels)
      : base_(std::move(base)), max_labels_(max_labels) {}
  Family(const Family&) = delete;
  Family& operator=(const Family&) = delete;

  /// The metric for `label` (stable for the life of the process).
  Metric& with(std::string_view label) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = resolved_.find(label); it != resolved_.end()) {
      return *it->second;
    }
    if (resolved_.size() < max_labels_) {
      Metric& m = lookup(base_ + "." + std::string(label));
      resolved_.emplace(std::string(label), &m);
      return m;
    }
    if (other_ == nullptr) other_ = &lookup(base_ + ".other");
    return *other_;
  }

  /// Retire `label`: forget it (freeing its cardinality slot for a future
  /// label) and drop its `<base>.<label>` series from registry snapshots,
  /// so a scrape of a long-lived process stops showing closed streams as
  /// live. The metric object itself is leaked, not destroyed -- cached
  /// references stay valid; they just stop being scraped. A later with()
  /// of the same label starts a fresh series. Returns false when the label
  /// never had its own series (unknown, or rolled into `.other`).
  bool retire(std::string_view label) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = resolved_.find(label);
    if (it == resolved_.end()) return false;
    detail::unregister_metric(base_ + "." + it->first);
    resolved_.erase(it);
    return true;
  }

  /// Distinct labels granted their own series so far (excludes rollover).
  std::size_t distinct() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return resolved_.size();
  }

 private:
  Metric& lookup(const std::string& name);

  const std::string base_;
  const std::size_t max_labels_;
  mutable std::mutex mutex_;
  std::map<std::string, Metric*, std::less<>> resolved_;
  Metric* other_ = nullptr;
};

using CounterFamily = Family<Counter>;
using GaugeFamily = Family<Gauge>;

template <>
inline Counter& Family<Counter>::lookup(const std::string& name) {
  return counter(name);
}
template <>
inline Gauge& Family<Gauge>::lookup(const std::string& name) {
  return gauge(name);
}

/// One entry of a full-registry snapshot.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  HistogramSnapshot hist;
};

/// Torn-free snapshot of every registered metric, keyed by name.
std::map<std::string, MetricSnapshot> snapshot_all();

/// Zero every registered metric (counts only; registration is permanent).
void reset_all();

/// Snapshot rendered as a JSON object {"name": value-or-summary, ...}.
std::string snapshot_json();

/// Snapshot rendered in the Prometheus text exposition format: counters and
/// gauges as single samples, histograms as summaries (`{quantile="0.5"}` /
/// `{quantile="0.99"}` bucket-quantiles plus `_sum` / `_count`). Metric
/// names are sanitized to the Prometheus grammar (`.` and other invalid
/// characters become `_`). This is what telemetry::StatsServer serves at
/// /metrics, so any Prometheus-compatible scraper can watch a live run.
std::string expose_text();

/// Write snapshot_json() to a file.
Status dump_json(const std::string& path);

}  // namespace flexio::metrics
