#include "apps/scenarios.h"

namespace flexio::apps {

std::string_view gts_variant_name(GtsVariant v) {
  switch (v) {
    case GtsVariant::kInline: return "Inline";
    case GtsVariant::kHelperDataAware: return "Helper Core (Data Aware Mapping)";
    case GtsVariant::kHelperHolistic: return "Helper Core (Holistic)";
    case GtsVariant::kHelperTopoAware: return "Helper Core (Node Topo. Aware)";
    case GtsVariant::kStaging: return "Staging";
    case GtsVariant::kSolo: return "Lower Bound";
  }
  return "?";
}

std::string_view s3d_variant_name(S3dVariant v) {
  switch (v) {
    case S3dVariant::kInline: return "Inline";
    case S3dVariant::kHybridDataAware: return "Hybrid (Data Aware Mapping)";
    case S3dVariant::kStagingHolistic: return "Staging (Holistic)";
    case S3dVariant::kStagingTopoAware: return "Staging (Node Topo. Aware)";
    case S3dVariant::kSolo: return "Lower Bound";
  }
  return "?";
}

CoupledConfig gts_scenario(const sim::MachineDesc& machine, int gts_cores,
                           GtsVariant variant) {
  CoupledConfig c;
  c.machine = machine;
  const bool titan = machine.sockets_per_node == 2;

  // GTS rank geometry. Smoky (4 NUMA domains of 4 cores): 4 ranks/node at
  // 4 threads (inline/staging/solo) or 3 threads + 1 helper core
  // (helper-core variants). Titan (2 domains of 8): 2 ranks/node at 8 or
  // 7+1 threads. The "GTS cores" axis counts the cores the simulation
  // program owns, so every variant uses the same node count.
  const int full_threads = titan ? 8 : 4;
  const bool helper_variant = variant == GtsVariant::kHelperDataAware ||
                              variant == GtsVariant::kHelperHolistic ||
                              variant == GtsVariant::kHelperTopoAware;
  c.sim_ranks = gts_cores / full_threads;
  c.threads_per_rank = helper_variant ? full_threads - 1 : full_threads;
  c.analytics_ranks = c.sim_ranks;  // one helper per rank when co-located

  // Compute calibration. The serial fraction makes dropping one thread
  // cost ~2.7% (paper Figure 7, Case 2 -> Case 1): GTS "cannot make full
  // use of all cores" because of single-threaded code regions.
  c.interval_compute_1t = titan ? 4.0 : 4.0;
  c.serial_fraction = titan ? 0.62 : 0.74;
  c.sim_mpi_seconds = 0.05;
  c.output_bytes_per_rank = 110e6;  // paper: 110 MB per process

  // Analytics: weak-scaled query+histogram work sized so inline analytics
  // weigh ~23.6% of GTS runtime at the base scale; the global histogram
  // merge is the non-scalable tail that punishes inline at large scales.
  const double t_full = c.serial_fraction * c.interval_compute_1t +
                        (1 - c.serial_fraction) * c.interval_compute_1t /
                            full_threads;
  c.analytics_work_per_sim_rank = 0.27 * t_full;
  c.nonscalable_base = 0.02;
  c.nonscalable_log = 0.027;
  c.analytics_file_bytes = 64e3;  // small histogram CSVs

  // Cache model per socket (Figure 8 calibration: +47% misses, ~4%
  // slowdown on Smoky's 2 MB L3; Titan's 8 MB L3 suffers less).
  if (titan) {
    c.sim_cache = sim::CacheWorkload{10.0 * (1 << 20), 6.0, 0.065};
    c.analytics_ws_bytes = 8.0 * (1 << 20);
  } else {
    c.sim_cache = sim::CacheWorkload{3.0 * (1 << 20), 8.0, 0.07};
    c.analytics_ws_bytes = 3.5 * (1 << 20);
  }

  c.intervals = 40;
  c.async_movement = true;
  // GTS particle counts change every step, so distributions cannot be
  // cached (NO_CACHING): the full handshake runs each interval.
  c.handshake_cached = false;

  switch (variant) {
    case GtsVariant::kInline:
      c.placement = AnalyticsPlacement::kInline;
      break;
    case GtsVariant::kHelperTopoAware:
      // Fully aligned: threads within their NUMA domain, shm buffers
      // pinned in the producer's domain.
      c.placement = AnalyticsPlacement::kHelperCore;
      c.numa_aligned_threads = true;
      c.numa_aligned_buffers = true;
      break;
    case GtsVariant::kHelperHolistic:
      // Linear in-node binding: some ranks' OpenMP threads straddle NUMA
      // boundaries (paper: hurts by up to 7% on Smoky).
      c.placement = AnalyticsPlacement::kHelperCore;
      c.numa_aligned_threads = false;
      c.numa_aligned_buffers = true;
      break;
    case GtsVariant::kHelperDataAware:
      // Ignores node topology entirely: cross-domain threads *and*
      // remote-domain queue/pool placement (up to 9.5% behind topo-aware).
      c.placement = AnalyticsPlacement::kHelperCore;
      c.numa_aligned_threads = false;
      c.numa_aligned_buffers = false;
      break;
    case GtsVariant::kStaging:
      c.placement = AnalyticsPlacement::kStaging;
      // Conservative resource allocation (the paper notes deliberate
      // over-provisioning): the faster Gemini NICs let Titan feed fewer,
      // more heavily loaded staging nodes.
      c.analytics_ranks = std::max(1, c.sim_ranks / (titan ? 4 : 2));
      break;
    case GtsVariant::kSolo:
      c.placement = AnalyticsPlacement::kNone;
      c.analytics_ranks = 0;
      break;
  }
  return c;
}

CoupledConfig s3d_scenario(const sim::MachineDesc& machine, int s3d_cores,
                           S3dVariant variant) {
  CoupledConfig c;
  c.machine = machine;
  const bool titan = machine.sockets_per_node == 2;

  // S3D_Box runs MPI-everywhere: one rank per core, 3-D decomposition.
  c.sim_ranks = s3d_cores;
  c.threads_per_rank = 1;
  c.interval_compute_1t = 2.0;  // ten cycles between outputs
  c.serial_fraction = 1.0;      // single-threaded ranks: Amdahl is moot
  // Internal MPI (halo exchanges) dominates inter-program movement here.
  c.sim_mpi_seconds = 0.35;
  c.output_bytes_per_rank = 1.7e6;  // paper: 1.7 MB per process per output

  // Visualization: 128:1 simulation-to-analytics ratio (paper resource
  // allocation; 1/128 = the "0.78% additional resources").
  c.analytics_ranks = std::max(1, c.sim_ranks / 128);
  // Rendering parallelizes over the received data; compositing and image
  // output grow with the participant count.
  c.analytics_work_per_sim_rank = 0.011;
  c.nonscalable_base = 0.05;
  c.nonscalable_log = 0.09;
  c.analytics_file_bytes = 22.0 * 3.0e6;  // 22 species images (PPM)

  // S3D is far less cache-sensitive per rank (structured stencils).
  c.sim_cache = sim::CacheWorkload{1.0 * (1 << 20), 4.0, 0.05};
  c.analytics_ws_bytes = titan ? 4.0 * (1 << 20) : 2.0 * (1 << 20);

  c.intervals = 10;
  c.async_movement = true;
  c.handshake_cached = true;  // CACHING_ALL + batching (Section IV.B.1)

  switch (variant) {
    case S3dVariant::kInline:
      c.placement = AnalyticsPlacement::kInline;
      break;
    case S3dVariant::kHybridDataAware:
      // Data-aware mapping intermixes visualization with simulation ranks,
      // stretching S3D's halo exchanges across the interconnect.
      c.placement = AnalyticsPlacement::kHybrid;
      c.mpi_spread_penalty = 1.35;
      break;
    case S3dVariant::kStagingHolistic:
      c.placement = AnalyticsPlacement::kStaging;
      // Holistic respects the 3-D block layout but not the NUMA detail.
      c.mpi_spread_penalty = 1.02;
      break;
    case S3dVariant::kStagingTopoAware:
      c.placement = AnalyticsPlacement::kStaging;
      c.mpi_spread_penalty = 1.0;
      break;
    case S3dVariant::kSolo:
      c.placement = AnalyticsPlacement::kNone;
      c.analytics_ranks = 0;
      break;
  }
  return c;
}

}  // namespace flexio::apps
