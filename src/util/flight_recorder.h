// Flight recorder: a continuous low-rate sampler of the metrics registry.
//
// End-of-run dumps (metrics::dump_json) show where time went, but adaptive
// placement needs to see stats *while they change* -- queue occupancy
// climbing, in-flight bytes saturating a link. The flight recorder
// snapshots the registry periodically and appends one JSON line of
// *deltas* per sample (schema "flexio-stats-v1") to a size-bounded
// rotating file, so a run of any length leaves a bounded, replayable
// record of its recent history.
//
// Cost model: when no recorder is running, the maybe_sample() hook is one
// relaxed atomic load and a branch -- same budget as a disabled counter,
// pinned by BM_FlightRecorderDisabled in the perf-smoke gate. A running
// background recorder adds zero cost to application threads (the sampler
// thread does all the work). In cooperative mode (Options::background ==
// false) nothing samples until request_sample() marks a sample due or
// sample_now() is called directly; timestamps come from metrics::now_ns(),
// so tests drive the recorder deterministically under the fake clock.
//
// File format: JSON lines. The first line marks the start of recording;
// each subsequent line carries only what changed since the previous
// sample (counter deltas, new gauge values, histogram count/sum deltas
// plus current p50/p99 bucket-quantiles -- additive keys; consumers of
// the original {count,sum}-only shape keep parsing). The shared encoder
// lives in util/stats_delta.h. Samples where nothing changed are skipped.
//
//   {"schema":"flexio-stats-v1","seq":0,"t_ns":12000,"start":true}
//   {"schema":"flexio-stats-v1","seq":1,"t_ns":17000,
//    "counters":{"evpath.send.msgs":42},
//    "gauges":{"shm.queue.occupancy":3},
//    "histograms":{"flexio.step.total.ns":
//        {"count":4,"sum":812345,"p50":180224.0,"p99":229376.0}}}
//
// Rotation: when appending a line would push the current file past
// Options::max_bytes, the file is renamed path -> path.1 (shifting
// existing path.1 -> path.2, ... up to max_rotations) and a fresh file is
// started. Oldest data beyond the last rotation slot is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace flexio::flight {

struct Options {
  std::string path;                  // output file (JSON lines)
  std::uint64_t interval_ms = 100;   // background sampling period
  std::size_t max_bytes = 4u << 20;  // rotate when a file would exceed this
  int max_rotations = 2;             // keep path.1 .. path.N rotated files
  bool background = true;  // false: cooperative mode, no sampler thread
};

namespace detail {
extern std::atomic<bool> g_active;
extern std::atomic<bool> g_due;
void sample_due();
}  // namespace detail

/// True while a recorder is running (between start() and stop()).
inline bool active() {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// Cooperative sampling hook for instrumented call sites: near-free when
/// no recorder is running or no sample is due; otherwise takes the sample
/// marked due by request_sample().
inline void maybe_sample() {
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  if (!detail::g_due.load(std::memory_order_relaxed)) return;
  detail::sample_due();
}

/// Mark a sample due; the next maybe_sample() on any thread performs it.
void request_sample();

/// Start recording. Fails if a recorder is already running or the output
/// file cannot be opened. Takes a baseline registry snapshot so the first
/// sample reports deltas since start, not since process birth.
Status start(const Options& options);

/// Stop recording: joins the sampler thread (background mode), takes one
/// final sample, flushes, and closes the file. No-op when not running.
void stop();

/// Take one sample immediately (any mode). Returns kFailedPrecondition
/// when no recorder is running.
Status sample_now();

/// Lines written since start(), including the start marker. For tests.
std::uint64_t samples_taken();

/// Append one pre-rendered JSON line (e.g. a telemetry::Watchdog
/// "flexio-health-v1" event) to the recorder stream. When a recorder is
/// running the line lands in the file like any sample; either way it
/// enters the in-memory tail, so the stats server's /flight endpoint can
/// show recent events without a file open.
void record_event(const std::string& line);

/// The most recent lines (samples and events, oldest first), bounded by a
/// fixed in-memory capacity. Serves telemetry::StatsServer /flight.
std::vector<std::string> tail(std::size_t n);

}  // namespace flexio::flight
