// S3D pipeline: the paper's combustion use case end to end (Section IV.B).
//
// Four S3D_Box ranks output species fields as 3-D global arrays through a
// FlexIO stream (global-array pattern with MxN re-distribution: the
// visualization asks for z-slabs that cut across the writers' 3-D blocks).
// One visualization rank volume-renders each requested species and writes
// a PPM image per step, exactly the paper's "parallel volume rendering
// code ... writing rendered image to files in PPM format".
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/s3d.h"
#include "apps/volume_renderer.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"

using namespace flexio;

namespace {
constexpr int kSimRanks = 4;
constexpr int kSteps = 2;
const adios::Dims kGlobal{24, 20, 16};
const int kRenderSpecies[] = {0, 8, 21};  // H2, CO, N2
}  // namespace

int main() {
  Runtime runtime;
  Program sim("s3d", kSimRanks);
  Program viz("render", 1);

  xml::MethodConfig method;
  method.method = "FLEXIO";
  // The S3D tuning of Section IV.B.1: fixed distributions allow full
  // handshake caching; batching + async hide movement from the solver.
  FLEXIO_CHECK(xml::apply_method_params("caching=all; batching=yes; async=yes",
                                        &method)
                   .is_ok());

  auto s3d_rank = [&](int rank) {
    StreamSpec spec;
    spec.stream = "species";
    spec.endpoint = EndpointSpec{&sim, rank, evpath::Location{rank % 2, rank}};
    spec.method = method;
    auto writer = runtime.open_writer(spec);
    FLEXIO_CHECK(writer.is_ok());
    apps::S3dRank s3d(kGlobal, apps::s3d_decompose(kSimRanks), rank);
    for (int step = 0; step < kSteps; ++step) {
      for (int c = 0; c < 10; ++c) s3d.advance();  // ten cycles per output
      FLEXIO_CHECK(writer.value()->begin_step(step).is_ok());
      for (int s = 0; s < apps::kS3dSpecies; ++s) {
        FLEXIO_CHECK(writer.value()
                         ->write(s3d.species_meta(s),
                                 as_bytes_view(std::span<const double>(
                                     s3d.species(s))))
                         .is_ok());
      }
      FLEXIO_CHECK(writer.value()->end_step().is_ok());
    }
    FLEXIO_CHECK(writer.value()->close().is_ok());
  };

  auto render_rank = [&] {
    StreamSpec spec;
    spec.stream = "species";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{5, 0}};
    spec.method = method;
    auto reader = runtime.open_reader(spec);
    FLEXIO_CHECK(reader.is_ok());

    const adios::Box full{{0, 0, 0}, kGlobal};
    std::vector<std::vector<double>> fields(std::size(kRenderSpecies));
    for (auto& f : fields) f.resize(full.elements());
    for (;;) {
      auto step = reader.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      FLEXIO_CHECK(step.is_ok());
      for (std::size_t i = 0; i < std::size(kRenderSpecies); ++i) {
        FLEXIO_CHECK(
            reader.value()
                ->schedule_read(apps::S3dRank::species_name(kRenderSpecies[i]),
                                full,
                                MutableByteView(std::as_writable_bytes(
                                    std::span<double>(fields[i]))))
                .is_ok());
      }
      FLEXIO_CHECK(reader.value()->perform_reads().is_ok());
      for (std::size_t i = 0; i < std::size(kRenderSpecies); ++i) {
        const auto fragment =
            apps::render_slab(full, std::span<const double>(fields[i]));
        auto image = apps::composite({fragment});
        FLEXIO_CHECK(image.is_ok());
        const std::string path =
            "s3d_" + apps::S3dRank::species_name(kRenderSpecies[i]) +
            "_step" + std::to_string(step.value()) + ".ppm";
        FLEXIO_CHECK(apps::write_ppm(path, static_cast<int>(kGlobal[0]),
                                     static_cast<int>(kGlobal[1]),
                                     image.value())
                         .is_ok());
        std::printf("[render] wrote %s\n", path.c_str());
      }
      FLEXIO_CHECK(reader.value()->end_step().is_ok());
    }
    // Writer-side monitoring shipped at close (Section II.G).
    const auto& report = reader.value()->writer_report();
    std::printf("[render] writer report: %llu steps, %llu handshakes "
                "performed, %llu skipped via CACHING_ALL\n",
                static_cast<unsigned long long>(report->steps),
                static_cast<unsigned long long>(report->handshakes_performed),
                static_cast<unsigned long long>(report->handshakes_skipped));
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < kSimRanks; ++r) {
    threads.emplace_back([&, r] { s3d_rank(r); });
  }
  threads.emplace_back(render_rank);
  for (auto& t : threads) t.join();
  return 0;
}
