#include "shm/channel.h"

#include <cstring>
#include <thread>

namespace flexio::shm {

namespace {
constexpr std::size_t kControlBytes = 1 + 8 + 8 + 8 + 4 + 8 + 8;

// One published fragment of an xpmem-iov sync send. The producer blocks on
// the ack until the consumer gathered every segment, so the descriptor
// array may live on the producer's stack/heap.
struct XpmemSeg {
  std::uint64_t addr = 0;
  std::uint64_t len = 0;
};

std::size_t iov_total(std::span<const ByteView> frags) {
  std::size_t n = 0;
  for (const ByteView& f : frags) n += f.size();
  return n;
}

void iov_gather(std::span<const ByteView> frags, std::byte* dst) {
  for (const ByteView& f : frags) {
    if (f.empty()) continue;
    std::memcpy(dst, f.data(), f.size());
    dst += f.size();
  }
}
}  // namespace

Channel::Channel(ChannelOptions options)
    : options_(options),
      queue_(options.queue_entries,
             std::max(options.queue_payload_bytes,
                      kControlBytes + options.inline_threshold)),
      pool_(options.pool_bytes) {}

void Channel::encode_control(const Control& ctl, std::span<const ByteView> frags,
                             std::vector<std::byte>* out) {
  out->resize(kControlBytes + iov_total(frags));
  std::byte* p = out->data();
  auto put = [&p](const void* src, std::size_t n) {
    std::memcpy(p, src, n);
    p += n;
  };
  const auto tag = static_cast<std::uint8_t>(ctl.tag);
  put(&tag, 1);
  put(&ctl.size, 8);
  put(&ctl.addr, 8);
  put(&ctl.pool_capacity, 8);
  put(&ctl.pool_class, 4);
  put(&ctl.pool_id, 8);
  put(&ctl.ack_addr, 8);
  iov_gather(frags, p);
}

Status Channel::decode_control(ByteView raw, Control* ctl,
                               ByteView* inline_payload) {
  if (raw.size() < kControlBytes) {
    return make_error(ErrorCode::kInternal, "short shm control message");
  }
  const std::byte* p = raw.data();
  auto get = [&p](void* dst, std::size_t n) {
    std::memcpy(dst, p, n);
    p += n;
  };
  std::uint8_t tag = 0;
  get(&tag, 1);
  if (tag > static_cast<std::uint8_t>(Tag::kXpmemIov)) {
    return make_error(ErrorCode::kInternal, "bad shm control tag");
  }
  ctl->tag = static_cast<Tag>(tag);
  get(&ctl->size, 8);
  get(&ctl->addr, 8);
  get(&ctl->pool_capacity, 8);
  get(&ctl->pool_class, 4);
  get(&ctl->pool_id, 8);
  get(&ctl->ack_addr, 8);
  *inline_payload = raw.subspan(kControlBytes);
  return Status::ok();
}

Status Channel::send_control(const Control& ctl, ByteView inline_payload) {
  const ByteView one[] = {inline_payload};
  return send_control(ctl, std::span<const ByteView>(one));
}

Status Channel::send_control(const Control& ctl,
                             std::span<const ByteView> frags) {
  std::vector<std::byte> wire;
  encode_control(ctl, frags, &wire);
  // Enqueue in short slices so a producer blocked on a full ring notices a
  // departed consumer quickly instead of waiting out the whole timeout.
  const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
  for (;;) {
    if (receiver_gone_.load(std::memory_order_acquire)) {
      return make_error(ErrorCode::kUnavailable, "shm receiver gone");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return make_error(ErrorCode::kTimeout, "shm queue full");
    }
    const auto slice = std::min<std::chrono::nanoseconds>(
        deadline - now, std::chrono::milliseconds(5));
    const Status st = queue_.enqueue(ByteView(wire), slice);
    if (st.code() != ErrorCode::kTimeout) return st;
  }
}

Status Channel::wait_ack(const std::atomic<std::uint32_t>& ack) {
  const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
  int spins = 0;
  while (ack.load(std::memory_order_acquire) == 0) {
    if (receiver_gone_.load(std::memory_order_acquire)) {
      // The consumer was destroyed: it will never copy or touch the ack
      // flag, so the published buffers are safe to reclaim immediately.
      closed_.store(true, std::memory_order_relaxed);
      return make_error(ErrorCode::kUnavailable,
                        "xpmem sync send: receiver gone");
    }
    if (++spins > 64) std::this_thread::yield();
    if (std::chrono::steady_clock::now() > deadline) {
      // The consumer may still touch the published buffers and the ack flag
      // after we give up, so a timeout here is unrecoverable: poison the
      // channel.
      closed_.store(true, std::memory_order_relaxed);
      return make_error(ErrorCode::kTimeout,
                        "xpmem sync send: consumer never copied");
    }
  }
  return Status::ok();
}

Status Channel::send(ByteView msg) {
  if (closed_.load(std::memory_order_relaxed)) {
    return make_error(ErrorCode::kFailedPrecondition, "channel closed");
  }
  Control ctl{};
  if (msg.size() <= options_.inline_threshold) {
    ctl.tag = Tag::kInline;
    ctl.size = msg.size();
    inline_sends_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(msg.size(), std::memory_order_relaxed);
    copies_.fetch_add(2, std::memory_order_relaxed);  // in + out of entry
    return send_control(ctl, msg);
  }
  // Pool path: copy into a pooled buffer (copy #1); the consumer copies out
  // (copy #2) and returns the buffer to our free list.
  auto buffer = pool_.acquire(msg.size());
  if (!buffer.is_ok()) return buffer.status();
  PoolBuffer buf = buffer.value();
  std::memcpy(buf.data, msg.data(), msg.size());
  ctl.tag = Tag::kPool;
  ctl.size = msg.size();
  ctl.addr = reinterpret_cast<std::uint64_t>(buf.data);
  ctl.pool_capacity = buf.capacity;
  ctl.pool_class = buf.size_class;
  ctl.pool_id = buf.id;
  pool_sends_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(msg.size(), std::memory_order_relaxed);
  copies_.fetch_add(2, std::memory_order_relaxed);
  const Status st = send_control(ctl, ByteView{});
  if (!st.is_ok()) pool_.release(buf);  // undo so the buffer is not leaked
  return st;
}

Status Channel::send_sync(ByteView msg) {
  if (!options_.use_xpmem || msg.size() <= options_.inline_threshold) {
    // Fall back to the copying path; queue completion is good enough for
    // small messages since the payload left the caller's buffer already.
    return send(msg);
  }
  if (closed_.load(std::memory_order_relaxed)) {
    return make_error(ErrorCode::kFailedPrecondition, "channel closed");
  }
  // XPMEM path: publish the caller's buffer, wait for the consumer's ack.
  std::atomic<std::uint32_t> ack{0};
  Control ctl{};
  ctl.tag = Tag::kXpmem;
  ctl.size = msg.size();
  ctl.addr = reinterpret_cast<std::uint64_t>(msg.data());
  ctl.ack_addr = reinterpret_cast<std::uint64_t>(&ack);
  xpmem_sends_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(msg.size(), std::memory_order_relaxed);
  copies_.fetch_add(1, std::memory_order_relaxed);  // single consumer copy
  FLEXIO_RETURN_IF_ERROR(send_control(ctl, ByteView{}));
  return wait_ack(ack);
}

Status Channel::send_iov(std::span<const ByteView> frags) {
  if (closed_.load(std::memory_order_relaxed)) {
    return make_error(ErrorCode::kFailedPrecondition, "channel closed");
  }
  const std::size_t total = iov_total(frags);
  Control ctl{};
  if (total <= options_.inline_threshold) {
    // Gather straight into the queue entry: the flat coalescing copy a
    // plain send() would have needed never happens.
    ctl.tag = Tag::kInline;
    ctl.size = total;
    inline_sends_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(total, std::memory_order_relaxed);
    copies_.fetch_add(2, std::memory_order_relaxed);  // in + out of entry
    return send_control(ctl, frags);
  }
  // Pool path: gather the fragments directly into the pooled buffer
  // (copy #1); the consumer copies out (copy #2) as usual.
  auto buffer = pool_.acquire(total);
  if (!buffer.is_ok()) return buffer.status();
  PoolBuffer buf = buffer.value();
  iov_gather(frags, buf.data);
  ctl.tag = Tag::kPool;
  ctl.size = total;
  ctl.addr = reinterpret_cast<std::uint64_t>(buf.data);
  ctl.pool_capacity = buf.capacity;
  ctl.pool_class = buf.size_class;
  ctl.pool_id = buf.id;
  pool_sends_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(total, std::memory_order_relaxed);
  copies_.fetch_add(2, std::memory_order_relaxed);
  const Status st = send_control(ctl, ByteView{});
  if (!st.is_ok()) pool_.release(buf);
  return st;
}

Status Channel::send_sync_iov(std::span<const ByteView> frags) {
  const std::size_t total = iov_total(frags);
  if (!options_.use_xpmem || total <= options_.inline_threshold) {
    return send_iov(frags);
  }
  if (closed_.load(std::memory_order_relaxed)) {
    return make_error(ErrorCode::kFailedPrecondition, "channel closed");
  }
  // XPMEM iov path: publish a descriptor list of the caller's fragments and
  // block until the consumer gathered them all -- one payload copy total,
  // performed entirely by the consumer.
  std::vector<XpmemSeg> segs;
  segs.reserve(frags.size());
  for (const ByteView& f : frags) {
    if (f.empty()) continue;
    segs.push_back(XpmemSeg{reinterpret_cast<std::uint64_t>(f.data()),
                            static_cast<std::uint64_t>(f.size())});
  }
  std::atomic<std::uint32_t> ack{0};
  Control ctl{};
  ctl.tag = Tag::kXpmemIov;
  ctl.size = total;
  ctl.addr = reinterpret_cast<std::uint64_t>(segs.data());
  ctl.pool_id = segs.size();  // repurposed as the segment count
  ctl.ack_addr = reinterpret_cast<std::uint64_t>(&ack);
  xpmem_sends_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(total, std::memory_order_relaxed);
  copies_.fetch_add(1, std::memory_order_relaxed);
  FLEXIO_RETURN_IF_ERROR(send_control(ctl, ByteView{}));
  return wait_ack(ack);
}

Status Channel::receive(std::vector<std::byte>* out) {
  return receive_for(out, options_.timeout);
}

Status Channel::receive_for(std::vector<std::byte>* out,
                            std::chrono::nanoseconds timeout) {
  if (eos_received_) {
    return make_error(ErrorCode::kEndOfStream, "stream closed by producer");
  }
  std::vector<std::byte> wire;
  FLEXIO_RETURN_IF_ERROR(queue_.dequeue(&wire, timeout));
  Control ctl{};
  ByteView inline_payload;
  FLEXIO_RETURN_IF_ERROR(decode_control(ByteView(wire), &ctl, &inline_payload));
  switch (ctl.tag) {
    case Tag::kInline:
      out->assign(inline_payload.begin(),
                  inline_payload.begin() + static_cast<std::ptrdiff_t>(ctl.size));
      return Status::ok();
    case Tag::kPool: {
      auto* data = reinterpret_cast<std::byte*>(ctl.addr);
      out->resize(ctl.size);
      std::memcpy(out->data(), data, ctl.size);
      PoolBuffer buf;
      buf.data = data;
      buf.capacity = ctl.pool_capacity;
      buf.size_class = ctl.pool_class;
      buf.id = ctl.pool_id;
      pool_.release(buf);  // back to the producer's free list
      return Status::ok();
    }
    case Tag::kXpmem: {
      // "Map" the producer's segment and copy straight from its source
      // buffer, then ack so the producer may reuse it.
      const auto* src = reinterpret_cast<const std::byte*>(ctl.addr);
      out->assign(src, src + ctl.size);
      auto* ack = reinterpret_cast<std::atomic<std::uint32_t>*>(ctl.ack_addr);
      ack->store(1, std::memory_order_release);
      return Status::ok();
    }
    case Tag::kXpmemIov: {
      // Gather every published fragment straight out of the producer's
      // buffers, then ack. pool_id carries the segment count.
      const auto* segs = reinterpret_cast<const XpmemSeg*>(ctl.addr);
      out->resize(ctl.size);
      std::byte* dst = out->data();
      for (std::uint64_t i = 0; i < ctl.pool_id; ++i) {
        std::memcpy(dst, reinterpret_cast<const std::byte*>(segs[i].addr),
                    segs[i].len);
        dst += segs[i].len;
      }
      auto* ack = reinterpret_cast<std::atomic<std::uint32_t>*>(ctl.ack_addr);
      ack->store(1, std::memory_order_release);
      return Status::ok();
    }
    case Tag::kEos:
      eos_received_ = true;
      return make_error(ErrorCode::kEndOfStream, "stream closed by producer");
  }
  return make_error(ErrorCode::kInternal, "unreachable");
}

void Channel::abandon_receiver() {
  receiver_gone_.store(true, std::memory_order_release);
}

Status Channel::close() {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true,
                                       std::memory_order_relaxed)) {
    return Status::ok();  // idempotent
  }
  Control ctl{};
  ctl.tag = Tag::kEos;
  return send_control(ctl, ByteView{});
}

ChannelStats Channel::stats() const {
  ChannelStats s;
  s.inline_sends = inline_sends_.load(std::memory_order_relaxed);
  s.pool_sends = pool_sends_.load(std::memory_order_relaxed);
  s.xpmem_sends = xpmem_sends_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.memory_copies = copies_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flexio::shm
