#include "util/trace_merge.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "util/json.h"
#include "util/strings.h"
#include "util/trace.h"

namespace flexio::trace {

namespace {

/// File-B span ids are shifted into this disjoint range. 2^32 keeps the
/// remapped ids exactly representable as JSON doubles.
constexpr std::uint64_t kBOffset = 1ull << 32;

std::uint64_t num_u64(const json::Value* v) {
  return v ? static_cast<std::uint64_t>(v->as_number()) : 0;
}

StatusOr<std::vector<MergedEvent>> load_events(std::string_view text) {
  auto doc = json::parse(text);
  if (!doc.is_ok()) return doc.status();
  const json::Value* events = doc.value().find("traceEvents");
  if (!events || events->kind() != json::Value::Kind::kArray) {
    return make_error(ErrorCode::kInvalidArgument,
                      "trace JSON has no traceEvents array");
  }
  std::vector<MergedEvent> out;
  out.reserve(events->as_array().size());
  for (const json::Value& e : events->as_array()) {
    MergedEvent ev;
    if (const json::Value* v = e.find("name")) ev.name = v->as_string();
    if (const json::Value* v = e.find("ts")) ev.ts_us = v->as_number();
    if (const json::Value* v = e.find("dur")) ev.dur_us = v->as_number();
    ev.pid = static_cast<std::uint32_t>(num_u64(e.find("pid")));
    ev.tid = static_cast<std::uint32_t>(num_u64(e.find("tid")));
    if (const json::Value* args = e.find("args")) {
      ev.id = num_u64(args->find("id"));
      ev.parent = num_u64(args->find("parent"));
      ev.depth = static_cast<std::uint32_t>(num_u64(args->find("depth")));
      ev.stream = num_u64(args->find("stream"));
      ev.peer = num_u64(args->find("peer"));
      ev.remote_ns = num_u64(args->find("remote_ns"));
      if (const json::Value* v = args->find("step")) {
        ev.step = static_cast<std::int64_t>(v->as_number());
      }
    }
    out.push_back(std::move(ev));
  }
  return out;
}

/// Minimum (local - remote) over a file's clock samples, in nanoseconds.
/// Returns false when the file has no samples.
bool min_clock_delta(const std::vector<MergedEvent>& events, double* delta_ns,
                     std::size_t* pairs) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t n = 0;
  for (const MergedEvent& e : events) {
    if (e.name != kClockSampleName || e.remote_ns == 0) continue;
    const double local_ns = e.ts_us * 1e3;
    best = std::min(best, local_ns - static_cast<double>(e.remote_ns));
    ++n;
  }
  *pairs = n;
  if (n == 0) return false;
  *delta_ns = best;
  return true;
}

}  // namespace

std::string MergedTrace::to_json() const {
  std::string out = "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const MergedEvent& e = events[i];
    std::string name;
    for (const char c : e.name) {
      if (c == '"' || c == '\\') name.push_back('\\');
      name.push_back(c);
    }
    out += str_format(
        "{\"name\": \"%s\", \"cat\": \"flexio\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, \"tid\": %u, "
        "\"args\": {\"id\": %llu, \"parent\": %llu, \"depth\": %u",
        name.c_str(), e.ts_us, e.dur_us, e.pid, e.tid,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.parent), e.depth);
    if (e.stream != 0) {
      out += str_format(", \"stream\": %llu",
                        static_cast<unsigned long long>(e.stream));
    }
    if (e.step >= 0) {
      out += str_format(", \"step\": %lld", static_cast<long long>(e.step));
    }
    if (e.peer != 0) {
      out += str_format(", \"peer\": %llu",
                        static_cast<unsigned long long>(e.peer));
    }
    if (e.remote_ns != 0) {
      out += str_format(", \"remote_ns\": %llu",
                        static_cast<unsigned long long>(e.remote_ns));
    }
    out += str_format("}}%s\n", i + 1 < events.size() ? "," : "");
  }
  out += "]}\n";
  return out;
}

Status MergedTrace::validate(double slack_us) const {
  std::unordered_map<std::uint64_t, const MergedEvent*> by_id;
  by_id.reserve(events.size());
  double prev_ts = -std::numeric_limits<double>::infinity();
  for (const MergedEvent& e : events) {
    if (e.ts_us < prev_ts) {
      return make_error(ErrorCode::kInternal,
                        "merged timeline is not monotonic at \"" + e.name +
                            "\" ts=" + std::to_string(e.ts_us));
    }
    prev_ts = e.ts_us;
    if (e.id != 0) by_id.emplace(e.id, &e);
  }
  for (const MergedEvent& e : events) {
    if (e.peer == 0) continue;
    const auto it = by_id.find(e.peer);
    if (it == by_id.end()) {
      return make_error(ErrorCode::kInternal,
                        "span \"" + e.name + "\" references missing peer " +
                            std::to_string(e.peer));
    }
    const MergedEvent& peer = *it->second;
    if (peer.ts_us > e.ts_us + slack_us) {
      return make_error(
          ErrorCode::kInternal,
          "span \"" + e.name + "\" starts before its peer parent \"" +
              peer.name + "\" (" + std::to_string(e.ts_us) + " < " +
              std::to_string(peer.ts_us) + " us)");
    }
    if (e.step >= 0 && peer.step >= 0 && e.step != peer.step) {
      return make_error(ErrorCode::kInternal,
                        "span \"" + e.name + "\" step " +
                            std::to_string(e.step) +
                            " does not match peer step " +
                            std::to_string(peer.step));
    }
    if (e.stream != 0 && peer.stream != 0 && e.stream != peer.stream) {
      return make_error(ErrorCode::kInternal,
                        "span \"" + e.name + "\" stream does not match peer");
    }
  }
  return Status::ok();
}

StatusOr<MergedTrace> merge_traces(std::string_view a_json,
                                   std::string_view b_json) {
  auto a = load_events(a_json);
  if (!a.is_ok()) return a.status();
  auto b = load_events(b_json);
  if (!b.is_ok()) return b.status();

  MergedTrace merged;
  // offset = a_clock - b_clock. File A's samples pair A-local receive
  // clocks with B send clocks (delta = offset + delay); file B's pair
  // B-local receives with A sends (delta = -offset + delay). With both
  // directions the symmetric-delay terms cancel; with one, the estimate
  // is biased by the (small) one-way delay.
  double da_ns = 0, db_ns = 0;
  const bool have_a = min_clock_delta(a.value(), &da_ns, &merged.clock_pairs_a);
  const bool have_b = min_clock_delta(b.value(), &db_ns, &merged.clock_pairs_b);
  double offset_ns = 0;
  if (have_a && have_b) {
    offset_ns = (da_ns - db_ns) / 2.0;
  } else if (have_a) {
    offset_ns = da_ns;
  } else if (have_b) {
    offset_ns = -db_ns;
  }
  merged.offset_us = offset_ns / 1e3;

  merged.events = std::move(a).value();
  // File-A spans may reference B span ids as peers; remap to B's new range.
  for (MergedEvent& e : merged.events) {
    if (e.peer != 0) e.peer += kBOffset;
  }
  for (MergedEvent& e : b.value()) {
    e.ts_us += merged.offset_us;
    if (e.id != 0) e.id += kBOffset;
    if (e.parent != 0) e.parent += kBOffset;
    merged.events.push_back(std::move(e));
  }
  // Stitch: a span with a cross-process peer and no local parent hangs
  // under the peer span in the merged timeline.
  for (MergedEvent& e : merged.events) {
    if (e.peer != 0 && e.parent == 0) e.parent = e.peer;
  }
  std::stable_sort(merged.events.begin(), merged.events.end(),
                   [](const MergedEvent& x, const MergedEvent& y) {
                     return x.ts_us < y.ts_us;
                   });
  return merged;
}

StatusOr<MergedTrace> merge_trace_files(const std::string& a_path,
                                        const std::string& b_path) {
  const auto slurp = [](const std::string& path) -> StatusOr<std::string> {
    std::ifstream in(path);
    if (!in) {
      return make_error(ErrorCode::kNotFound,
                        "cannot open trace file: " + path);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  auto a = slurp(a_path);
  if (!a.is_ok()) return a.status();
  auto b = slurp(b_path);
  if (!b.is_ok()) return b.status();
  return merge_traces(a.value(), b.value());
}

Status write_merged(const MergedTrace& merged, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kInternal,
                      "cannot open output file: " + path);
  }
  out << merged.to_json();
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "merged trace write failed");
}

}  // namespace flexio::trace
