// Tests for the shared-memory transport: FastForward SPSC queue, buffer
// pool, and the full channel protocol (inline / pool / xpmem / EOS).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "shm/buffer_pool.h"
#include "shm/channel.h"
#include "shm/spsc_queue.h"
#include "util/rng.h"

namespace flexio::shm {
namespace {

using namespace std::chrono_literals;

ByteView bytes_of(const std::string& s) {
  return ByteView(reinterpret_cast<const std::byte*>(s.data()), s.size());
}

std::string string_of(const std::vector<std::byte>& v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

TEST(SpscQueueTest, SingleThreadFifoOrder) {
  SpscQueue q(4, 64);
  EXPECT_TRUE(q.try_enqueue(bytes_of("one")));
  EXPECT_TRUE(q.try_enqueue(bytes_of("two")));
  std::vector<std::byte> out;
  ASSERT_TRUE(q.try_dequeue(&out));
  EXPECT_EQ(string_of(out), "one");
  ASSERT_TRUE(q.try_dequeue(&out));
  EXPECT_EQ(string_of(out), "two");
  EXPECT_FALSE(q.try_dequeue(&out));
}

TEST(SpscQueueTest, FullQueueRejectsEnqueue) {
  SpscQueue q(2, 16);
  EXPECT_TRUE(q.try_enqueue(bytes_of("a")));
  EXPECT_TRUE(q.try_enqueue(bytes_of("b")));
  EXPECT_FALSE(q.try_enqueue(bytes_of("c")));
  std::vector<std::byte> out;
  ASSERT_TRUE(q.try_dequeue(&out));
  EXPECT_TRUE(q.try_enqueue(bytes_of("c")));  // slot freed
}

TEST(SpscQueueTest, EmptyMessageAllowed) {
  SpscQueue q(2, 16);
  EXPECT_TRUE(q.try_enqueue({}));
  std::vector<std::byte> out{std::byte{1}};
  ASSERT_TRUE(q.try_dequeue(&out));
  EXPECT_TRUE(out.empty());
}

TEST(SpscQueueTest, BlockingTimeoutReported) {
  SpscQueue q(2, 16);
  std::vector<std::byte> out;
  EXPECT_EQ(q.dequeue(&out, 5ms).code(), ErrorCode::kTimeout);
  ASSERT_TRUE(q.try_enqueue(bytes_of("x")));
  ASSERT_TRUE(q.try_enqueue(bytes_of("y")));
  EXPECT_EQ(q.enqueue(bytes_of("z"), 5ms).code(), ErrorCode::kTimeout);
}

TEST(SpscQueueTest, StatsCountTraffic) {
  SpscQueue q(4, 16);
  std::vector<std::byte> out;
  EXPECT_FALSE(q.try_dequeue(&out));
  EXPECT_TRUE(q.try_enqueue(bytes_of("a")));
  EXPECT_TRUE(q.try_dequeue(&out));
  const QueueStats s = q.stats();
  EXPECT_EQ(s.enqueued, 1u);
  EXPECT_EQ(s.dequeued, 1u);
  EXPECT_GE(s.dequeue_empty_spins, 1u);
}

// Cross-thread stress: every message must arrive intact, in order.
class SpscStressTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SpscStressTest, CrossThreadOrderAndIntegrity) {
  const auto [entries, payload] = GetParam();
  SpscQueue q(static_cast<std::size_t>(entries),
              static_cast<std::size_t>(payload));
  constexpr int kMessages = 20000;

  std::thread producer([&] {
    Rng rng(1);
    std::vector<std::byte> msg;
    for (int i = 0; i < kMessages; ++i) {
      const std::size_t len = 4 + rng.next_below(
          static_cast<std::uint64_t>(payload) - 4);
      msg.resize(len);
      std::memcpy(msg.data(), &i, sizeof i);
      for (std::size_t k = sizeof(int); k < len; ++k) {
        msg[k] = static_cast<std::byte>((i + static_cast<int>(k)) & 0xff);
      }
      ASSERT_TRUE(q.enqueue(ByteView(msg), 10s).is_ok());
    }
  });

  Rng rng(1);  // same sequence as the producer for expected lengths
  std::vector<std::byte> out;
  for (int i = 0; i < kMessages; ++i) {
    const std::size_t len =
        4 + rng.next_below(static_cast<std::uint64_t>(payload) - 4);
    ASSERT_TRUE(q.dequeue(&out, 10s).is_ok()) << "message " << i;
    ASSERT_EQ(out.size(), len);
    int seq = -1;
    std::memcpy(&seq, out.data(), sizeof seq);
    ASSERT_EQ(seq, i);
    for (std::size_t k = sizeof(int); k < len; ++k) {
      ASSERT_EQ(out[k], static_cast<std::byte>((i + static_cast<int>(k)) & 0xff));
    }
  }
  producer.join();
  EXPECT_EQ(q.stats().enqueued, static_cast<std::uint64_t>(kMessages));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpscStressTest,
    ::testing::Values(std::make_tuple(2, 32), std::make_tuple(8, 64),
                      std::make_tuple(64, 256), std::make_tuple(3, 128)));

TEST(BufferPoolTest, SizeClassesArePowersOfTwo) {
  EXPECT_EQ(BufferPool::class_for(1), 0u);
  EXPECT_EQ(BufferPool::class_for(64), 0u);
  EXPECT_EQ(BufferPool::class_for(65), 1u);
  EXPECT_EQ(BufferPool::class_for(128), 1u);
  EXPECT_EQ(BufferPool::class_for(129), 2u);
  EXPECT_EQ(BufferPool::class_capacity(0), 64u);
  EXPECT_EQ(BufferPool::class_capacity(3), 512u);
}

TEST(BufferPoolTest, ReusesReleasedBuffers) {
  BufferPool pool(1 << 20);
  auto a = pool.acquire(1000);
  ASSERT_TRUE(a.is_ok());
  std::byte* ptr = a.value().data;
  pool.release(a.value());
  auto b = pool.acquire(900);  // same size class (1024)
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value().data, ptr);
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.reuses, 1u);
  pool.release(b.value());
}

TEST(BufferPoolTest, CapacityGrantsClosestClass) {
  BufferPool pool(1 << 20);
  auto b = pool.acquire(100);
  ASSERT_TRUE(b.is_ok());
  EXPECT_GE(b.value().capacity, 100u);
  EXPECT_EQ(b.value().capacity, 128u);
  pool.release(b.value());
}

TEST(BufferPoolTest, ReclaimsWhenOverThreshold) {
  BufferPool pool(256);  // tiny threshold
  auto a = pool.acquire(64);
  auto b = pool.acquire(64);
  auto c = pool.acquire(64);
  auto d = pool.acquire(64);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(c.is_ok());
  ASSERT_TRUE(d.is_ok());
  // 256 bytes allocated == threshold; releasing now keeps buffers, but a
  // fifth acquisition pushes over and later releases reclaim.
  auto e = pool.acquire(64);
  ASSERT_TRUE(e.is_ok());
  pool.release(e.value());
  EXPECT_GE(pool.stats().reclamations, 1u);
  pool.release(a.value());
  pool.release(b.value());
  pool.release(c.value());
  pool.release(d.value());
}

TEST(BufferPoolTest, RefusesBeyondDoubleBudget) {
  BufferPool pool(1024);
  auto a = pool.acquire(2048);  // in-use overshoot allowed up to 2x
  ASSERT_TRUE(a.is_ok());
  auto b = pool.acquire(2048);  // would exceed 2x budget
  EXPECT_FALSE(b.is_ok());
  EXPECT_EQ(b.status().code(), ErrorCode::kResourceExhausted);
  pool.release(a.value());
}

TEST(BufferPoolTest, CrossThreadRelease) {
  BufferPool pool(1 << 20);
  auto buf = pool.acquire(4096);
  ASSERT_TRUE(buf.is_ok());
  std::thread t([&] { pool.release(buf.value()); });
  t.join();
  EXPECT_EQ(pool.stats().bytes_in_use, 0u);
}

ChannelOptions small_options() {
  ChannelOptions o;
  o.queue_entries = 8;
  o.inline_threshold = 64;
  o.pool_bytes = 1 << 20;
  o.timeout = 2s;
  return o;
}

TEST(ChannelTest, InlineMessagesRoundTrip) {
  Channel ch(small_options());
  ASSERT_TRUE(ch.send(bytes_of("tiny")).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(ch.receive(&out).is_ok());
  EXPECT_EQ(string_of(out), "tiny");
  EXPECT_EQ(ch.stats().inline_sends, 1u);
  EXPECT_EQ(ch.stats().pool_sends, 0u);
}

TEST(ChannelTest, LargeAsyncGoesThroughPool) {
  Channel ch(small_options());
  std::string big(10000, 'x');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = char('a' + i % 26);
  ASSERT_TRUE(ch.send(bytes_of(big)).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(ch.receive(&out).is_ok());
  EXPECT_EQ(string_of(out), big);
  const ChannelStats s = ch.stats();
  EXPECT_EQ(s.pool_sends, 1u);
  // Paper: "two memory copies are needed for sending large messages
  // asynchronously".
  EXPECT_EQ(s.memory_copies, 2u);
}

TEST(ChannelTest, SyncLargeUsesXpmemOneCopy) {
  Channel ch(small_options());
  std::string big(5000, 'q');
  std::vector<std::byte> out;
  std::thread consumer([&] { ASSERT_TRUE(ch.receive(&out).is_ok()); });
  ASSERT_TRUE(ch.send_sync(bytes_of(big)).is_ok());
  consumer.join();
  EXPECT_EQ(string_of(out), big);
  const ChannelStats s = ch.stats();
  EXPECT_EQ(s.xpmem_sends, 1u);
  // Paper: XPMEM path needs a single copy.
  EXPECT_EQ(s.memory_copies, 1u);
}

TEST(ChannelTest, SyncWithXpmemDisabledFallsBackToPool) {
  ChannelOptions o = small_options();
  o.use_xpmem = false;
  Channel ch(o);
  std::string big(5000, 'q');
  ASSERT_TRUE(ch.send_sync(bytes_of(big)).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(ch.receive(&out).is_ok());
  EXPECT_EQ(ch.stats().pool_sends, 1u);
  EXPECT_EQ(ch.stats().xpmem_sends, 0u);
}

TEST(ChannelTest, EosDeliveredAfterPendingData) {
  Channel ch(small_options());
  ASSERT_TRUE(ch.send(bytes_of("last")).is_ok());
  ASSERT_TRUE(ch.close().is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(ch.receive(&out).is_ok());
  EXPECT_EQ(string_of(out), "last");
  EXPECT_EQ(ch.receive(&out).code(), ErrorCode::kEndOfStream);
  // EOS is sticky.
  EXPECT_EQ(ch.receive(&out).code(), ErrorCode::kEndOfStream);
}

TEST(ChannelTest, SendAfterCloseRejected) {
  Channel ch(small_options());
  ASSERT_TRUE(ch.close().is_ok());
  EXPECT_EQ(ch.send(bytes_of("x")).code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(ch.close().is_ok());  // idempotent
}

TEST(ChannelTest, ReceiveTimesOutWhenIdle) {
  ChannelOptions o = small_options();
  o.timeout = 10ms;
  Channel ch(o);
  std::vector<std::byte> out;
  EXPECT_EQ(ch.receive(&out).code(), ErrorCode::kTimeout);
}

TEST(ChannelTest, XpmemTimeoutPoisonsChannel) {
  // A sync send with no consumer cannot complete; after the timeout the
  // channel must refuse further sends (the consumer might still touch the
  // published segment, so recovery is impossible).
  ChannelOptions o = small_options();
  o.timeout = std::chrono::milliseconds(20);
  Channel ch(o);
  std::string big(5000, 'p');
  EXPECT_EQ(ch.send_sync(bytes_of(big)).code(), ErrorCode::kTimeout);
  EXPECT_EQ(ch.send(bytes_of("after")).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(ChannelTest, PoolBuffersRecycleAcrossManySends) {
  ChannelOptions o = small_options();
  Channel ch(o);
  std::string big(8192, 'z');
  std::vector<std::byte> out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ch.send(bytes_of(big)).is_ok());
    ASSERT_TRUE(ch.receive(&out).is_ok());
  }
  // Alternating send/receive means the pool steady-states at one buffer.
  EXPECT_EQ(ch.stats().pool_sends, 100u);
}

// Pipeline stress across threads with mixed sizes and a final EOS.
TEST(ChannelTest, MixedSizePipelineStress) {
  ChannelOptions o = small_options();
  o.queue_entries = 16;
  Channel ch(o);
  constexpr int kCount = 3000;

  std::thread producer([&] {
    Rng rng(7);
    std::vector<std::byte> msg;
    for (int i = 0; i < kCount; ++i) {
      const std::size_t len = 1 + rng.next_below(4096);
      msg.resize(len);
      for (std::size_t k = 0; k < len; ++k) {
        msg[k] = static_cast<std::byte>((i * 31 + static_cast<int>(k)) & 0xff);
      }
      ASSERT_TRUE(ch.send(ByteView(msg)).is_ok());
    }
    ASSERT_TRUE(ch.close().is_ok());
  });

  Rng rng(7);
  std::vector<std::byte> out;
  for (int i = 0; i < kCount; ++i) {
    const std::size_t len = 1 + rng.next_below(4096);
    ASSERT_TRUE(ch.receive(&out).is_ok()) << i;
    ASSERT_EQ(out.size(), len);
    for (std::size_t k = 0; k < len; ++k) {
      ASSERT_EQ(out[k],
                static_cast<std::byte>((i * 31 + static_cast<int>(k)) & 0xff));
    }
  }
  EXPECT_EQ(ch.receive(&out).code(), ErrorCode::kEndOfStream);
  producer.join();
}

}  // namespace
}  // namespace flexio::shm
